"""Structured campaign result handle.

:class:`CampaignResult` replaces the former dict-of-paths returns: it
bundles the JSON-friendly KPI ``summary``, the output-file map, the
picklable aggregate task ``state``, the evaluated KPI objects and lazy
iterators over the streamed record files, and can :meth:`merge` the results
of complementary campaign slices (e.g. ``backend.step_range`` shards run on
different machines) into one campaign-level result.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.alficore.results import merge_csv_files, merge_json_array_files

_JSON_CHUNK = 1 << 20


def _iter_json_array(path: Path) -> Iterator:
    """Incrementally yield the elements of a JSON array file.

    Parses with :meth:`json.JSONDecoder.raw_decode` over a sliding buffer, so
    memory stays bounded by the chunk size plus one element — a multi-GB
    detection record stream never has to fit in memory.  An empty file yields
    nothing; anything that is not a JSON array is an error.
    """
    decoder = json.JSONDecoder()
    with open(path, "r", encoding="utf-8") as handle:
        buffer = ""
        eof = False

        def ensure(position: int) -> int:
            """Grow the buffer until ``position`` is readable (or EOF)."""
            nonlocal buffer, eof
            while not eof and position >= len(buffer):
                chunk = handle.read(_JSON_CHUNK)
                if chunk:
                    buffer += chunk
                else:
                    eof = True
            return len(buffer)

        def skip_ws(position: int) -> int:
            while ensure(position) > position and buffer[position] in " \t\r\n":
                position += 1
            return position

        pos = skip_ws(0)
        if ensure(pos) <= pos:
            return  # empty file: no records
        if buffer[pos] != "[":
            raise ValueError(f"{path} is not a record array")
        pos += 1
        while True:
            pos = skip_ws(pos)
            if ensure(pos) <= pos:
                raise ValueError(f"{path}: unterminated record array")
            if buffer[pos] == "]":
                return
            if buffer[pos] == ",":
                pos += 1
                continue
            while True:
                try:
                    element, end = decoder.raw_decode(buffer, pos)
                except ValueError:
                    # An element that fails to parse may simply extend past the
                    # buffered chunk; read more and retry.  (On corrupt — not
                    # truncated — content this keeps buffering until EOF before
                    # erroring: incomplete and malformed input are
                    # indistinguishable until the file ends.)
                    if eof:
                        raise ValueError(
                            f"{path}: truncated or malformed record array"
                        ) from None
                    ensure(len(buffer) + 1)
                    continue
                if not eof and buffer.find(",", end) == -1 and buffer.find("]", end) == -1:
                    # A complete array element is always followed by "," or
                    # "]".  Neither is buffered yet, so the parse may have
                    # stopped mid-number at the chunk boundary (e.g. the "3"
                    # of "3.5"); extend the buffer and re-parse to be sure.
                    before = len(buffer)
                    ensure(before + 1)
                    if len(buffer) > before:
                        continue
                break
            yield element
            pos = end
            if pos >= _JSON_CHUNK:
                # Trim the consumed prefix once per chunk (not per element)
                # so the buffer stays chunk-sized without quadratic copying.
                buffer = buffer[pos:]
                pos = 0


@dataclass
class CampaignResult:
    """Everything one :func:`repro.experiments.run` invocation produced.

    Attributes:
        spec: the (validated) spec the campaign ran with.
        task: registry name of the task plug-in that produced the result.
        summary: JSON-friendly KPI summary (task-shaped).
        output_files: ``{tag: path}`` of every file written (empty without
            an ``output_dir``).
        state: the picklable aggregate task state (shard-mergeable).
        results: evaluated KPI objects, e.g. ``{"corrupted":
            ClassificationCampaignResult, "resil": ...}``.
        extras: task-specific in-memory artifacts (raw logit arrays,
            prediction lists, ...).
        context: evaluation context (``model_name``, ``num_classes``, ...)
            needed to re-evaluate a merged state.
    """

    spec: Any
    task: str
    summary: dict
    output_files: dict[str, str] = field(default_factory=dict)
    state: Any = None
    results: dict[str, Any] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)
    context: dict[str, Any] = field(default_factory=dict)
    # Live handles for facade interop; not part of the serialisable surface.
    wrapper: Any = None
    core: Any = None

    # ------------------------------------------------------------------ #
    # record access
    # ------------------------------------------------------------------ #
    def record_tags(self) -> list[str]:
        """Tags of the streamed record files (CSV/JSON array outputs)."""
        return sorted(
            tag
            for tag, path in self.output_files.items()
            if Path(path).suffix in (".csv", ".json") and tag != "kpis"
        )

    def iter_records(self, tag: str) -> Iterator[dict]:
        """Lazily iterate the records of one streamed output file.

        CSV files yield one dict per row (string values, as stored); JSON
        array files are parsed incrementally and yield one object per entry.
        Memory stays bounded by one record (plus a read chunk) either way.
        """
        if tag not in self.output_files:
            raise KeyError(
                f"no output file tagged {tag!r}; available: {sorted(self.output_files)}"
            )
        path = Path(self.output_files[tag])
        if path.suffix == ".csv":
            with open(path, "r", newline="", encoding="utf-8") as handle:
                yield from csv.DictReader(handle)
            return
        yield from _iter_json_array(path)

    def as_dict(self) -> dict:
        """JSON-friendly view (summary + file map)."""
        return {
            "name": getattr(self.spec, "name", "experiment"),
            "task": self.task,
            "summary": dict(self.summary),
            "output_files": dict(self.output_files),
        }

    # ------------------------------------------------------------------ #
    # shard merging
    # ------------------------------------------------------------------ #
    @classmethod
    def merge(
        cls,
        results: list["CampaignResult"],
        output_dir: str | Path | None = None,
    ) -> "CampaignResult":
        """Merge complementary campaign slices into one campaign result.

        The slices must come from the same task and be passed in campaign
        (step) order; their aggregate states are merged with the task's
        ``merge_states`` and re-evaluated, so the merged summary equals the
        summary of an unsliced run.  With ``output_dir``, record files
        present in every slice are concatenated there (byte-identical to an
        unsliced run's streams).
        """
        from repro.experiments.registry import TASKS

        if not results:
            raise ValueError("need at least one CampaignResult to merge")
        tasks = {result.task for result in results}
        if len(tasks) != 1:
            raise ValueError(f"cannot merge results of different tasks: {sorted(tasks)}")
        plugin = TASKS.get(results[0].task)
        merged_state = plugin.campaign_task_cls.merge_states(
            [result.state for result in results]
        )
        context = dict(results[0].context)
        evaluated, extras = plugin.evaluate(merged_state, context)
        output_files: dict[str, str] = {}
        if output_dir is not None:
            out = Path(output_dir)
            out.mkdir(parents=True, exist_ok=True)
            shared = [
                tag
                for tag in results[0].record_tags()
                if all(tag in result.output_files for result in results)
            ]
            for tag in shared:
                parts = [Path(result.output_files[tag]) for result in results]
                merged_path = out / parts[0].name
                # Merge via a temp file + atomic replace: ``output_dir`` may
                # be one of the slices' own directories, and the writers
                # truncate their target before reading the parts.
                scratch = merged_path.with_name(merged_path.name + ".merging")
                if parts[0].suffix == ".csv":
                    merge_csv_files(parts, scratch)
                else:
                    merge_json_array_files(parts, scratch)
                os.replace(scratch, merged_path)
                output_files[tag] = str(merged_path)
        return cls(
            spec=results[0].spec,
            task=results[0].task,
            summary=plugin.summarize(evaluated, output_files),
            output_files=output_files,
            state=merged_state,
            results=evaluated,
            extras=extras,
            context=context,
        )
