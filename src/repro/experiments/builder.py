"""Fluent programmatic construction of experiment specs.

::

    from repro.experiments import Experiment

    result = (
        Experiment.builder()
        .name("quickstart")
        .model("lenet5", num_classes=10, seed=0)
        .dataset("synthetic-classification", num_samples=30, num_classes=10)
        .scenario(injection_target="weights", rnd_bit_range=(0, 31))
        .backend("sharded", workers=2, num_shards=3)
        .output_dir("campaign_output")
        .run()
    )
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.alficore.scenario import ScenarioConfig
from repro.experiments.result import CampaignResult
from repro.experiments.spec import (
    BackendSpec,
    CachingSpec,
    ComponentSpec,
    ExecutionSpec,
    ExperimentSpec,
    SweepSpec,
)


class ExperimentBuilder:
    """Accumulates spec fields; ``build()`` validates and returns the spec."""

    def __init__(self) -> None:
        self._spec = ExperimentSpec()

    def name(self, name: str) -> "ExperimentBuilder":
        """Set the experiment name (used in result file names)."""
        self._spec.name = str(name)
        return self

    def task(self, name: str) -> "ExperimentBuilder":
        """Select the task plugin (``"classification"``, ``"detection"``, ...)."""
        self._spec.task = str(name)
        return self

    def model(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Select the model component and its constructor params."""
        self._spec.model = ComponentSpec(str(name), dict(params))
        return self

    def dataset(self, name: str, **params: Any) -> "ExperimentBuilder":
        """Select the dataset component and its constructor params."""
        self._spec.dataset = ComponentSpec(str(name), dict(params))
        return self

    def scenario(
        self, scenario: ScenarioConfig | None = None, **overrides: Any
    ) -> "ExperimentBuilder":
        """Set the scenario: an explicit config, field overrides, or both.

        With neither argument the accumulated scenario is left untouched.
        """
        base = scenario if scenario is not None else self._spec.scenario
        self._spec.scenario = base.copy(**overrides) if overrides else base
        return self

    def protection(self, name: str | None, **params: Any) -> "ExperimentBuilder":
        """Select a protection mechanism (``None`` removes it)."""
        self._spec.protection = ComponentSpec(str(name), dict(params)) if name else None
        return self

    def backend(
        self,
        name: str = "serial",
        workers: int = 1,
        num_shards: int | None = None,
        step_range: tuple[int, int] | None = None,
    ) -> "ExperimentBuilder":
        """Select the execution backend (``"serial"`` or ``"sharded"``)."""
        self._spec.backend = BackendSpec(str(name), int(workers), num_shards, step_range)
        return self

    def caching(self, golden_cache_mb: int = 0, prefix_reuse: bool = True) -> "ExperimentBuilder":
        """Golden-cache budget (MiB) and prefix-reuse toggle."""
        self._spec.caching = CachingSpec(int(golden_cache_mb), bool(prefix_reuse))
        return self

    def execution(
        self,
        retries: int = 2,
        shard_timeout: float | None = None,
        backoff: float = 0.5,
        resume: bool = False,
        executor: str = "interpreter",
    ) -> "ExperimentBuilder":
        """Execution knobs: fault tolerance (retry/timeout/resume) + executor.

        ``executor`` selects the forward-plan execution backend
        (``"interpreter"`` by default; ``"fused"`` enables op fusion with
        planned buffer reuse, see :mod:`repro.nn.fuse`).
        """
        self._spec.execution = ExecutionSpec(
            int(retries),
            float(shard_timeout) if shard_timeout is not None else None,
            float(backoff),
            bool(resume),
            str(executor),
        )
        return self

    def sweep(
        self,
        axes: dict[str, list] | None = None,
        points: list[dict] | None = None,
        store: str | Path | None = None,
    ) -> "ExperimentBuilder":
        """Declare a parameter grid (see :class:`SweepSpec`).

        ``axes`` maps dotted axis paths (``scenario.layer_range``,
        ``model.params.seed``, ...) to value lists — their cartesian product
        in declaration order — and ``points`` appends explicit extra grid
        points.  A spec with a sweep runs through
        :func:`repro.experiments.run_sweep` (``builder.run()`` refuses it).
        """
        self._spec.sweep = SweepSpec(
            axes={path: list(values) for path, values in (axes or {}).items()},
            points=[dict(point) for point in (points or [])],
            store=Path(store) if store is not None else None,
        )
        return self

    def input_shape(self, *shape: int) -> "ExperimentBuilder":
        """Per-sample input shape (e.g. ``input_shape(3, 32, 32)``)."""
        self._spec.input_shape = tuple(int(v) for v in shape) if shape else None
        return self

    def shuffle(self, dl_shuffle: bool = True) -> "ExperimentBuilder":
        """Toggle dataloader shuffling."""
        self._spec.dl_shuffle = bool(dl_shuffle)
        return self

    def output_dir(self, path: str | Path | None) -> "ExperimentBuilder":
        """Directory for result files (``None`` keeps results in memory)."""
        self._spec.output_dir = Path(path) if path is not None else None
        return self

    def options(self, **task_options: Any) -> "ExperimentBuilder":
        """Merge task-specific options into ``task_options``."""
        self._spec.task_options.update(task_options)
        return self

    def build(self) -> ExperimentSpec:
        """Validate and return (a copy of) the accumulated spec."""
        return self._spec.copy()  # copy() re-validates the clone

    def run(self) -> CampaignResult:
        """Shortcut: build the spec and execute it."""
        return Experiment(self.build()).run()


class Experiment:
    """A spec plus conveniences: ``Experiment.builder()``, ``load``, ``run``."""

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec

    @staticmethod
    def builder() -> ExperimentBuilder:
        """Start a fluent spec builder."""
        return ExperimentBuilder()

    @classmethod
    def load(cls, path: str | Path) -> "Experiment":
        """Load an experiment from a spec file (YAML or JSON)."""
        return cls(ExperimentSpec.load(path))

    def save(self, path: str | Path) -> Path:
        """Persist the spec (format chosen by suffix)."""
        return self.spec.save(path)

    def run(self, artifacts: Any = None) -> CampaignResult:
        """Execute the experiment through :func:`repro.experiments.run`."""
        from repro.experiments.runner import run

        return run(self.spec, artifacts=artifacts)
