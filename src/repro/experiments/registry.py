"""Central component registries of the Experiment API.

Every orthogonal choice of a fault-injection campaign — model, dataset,
error model, protection policy, task, execution backend — is resolved
through one of the :class:`Registry` singletons below.  A new workload is a
*registration*, not a new facade::

    from repro.experiments import register_model

    @register_model("tiny_mlp", kind="classifier")
    def tiny_mlp(num_classes: int = 10, seed: int = 0):
        return mlp(num_classes=num_classes, seed=seed)

Registries behave like read-only mappings of ``name -> factory``: iteration
yields names (so ``sorted(registry)`` can drive CLI ``choices``), lookup of
an unknown name raises :class:`UnknownComponentError` with a did-you-mean
suggestion, and duplicate registration raises
:class:`DuplicateComponentError` unless ``override=True`` is passed.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Iterator


class RegistryError(KeyError):
    """Base class of registry lookup/registration errors."""


class UnknownComponentError(RegistryError):
    """Raised when a name is not registered; carries a did-you-mean hint."""

    def __init__(self, kind: str, name: str, known: list[str]) -> None:
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
        message = f"unknown {kind} {name!r}"
        if suggestions:
            message += f"; did you mean {', '.join(repr(s) for s in suggestions)}?"
        message += f" (registered: {', '.join(sorted(known)) or 'none'})"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.suggestions = suggestions

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class DuplicateComponentError(RegistryError):
    """Raised when a name is registered twice without ``override=True``."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(
            f"{kind} {name!r} is already registered; pass override=True to replace it"
        )

    def __str__(self) -> str:
        return self.args[0]


class Registry:
    """A named mapping of component factories with metadata.

    Args:
        kind: human-readable component kind used in error messages
            (``"model"``, ``"dataset"``, ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable] = {}
        self._metadata: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable | None = None,
        *,
        override: bool = False,
        **metadata: Any,
    ) -> Callable:
        """Register ``factory`` under ``name`` (usable as a decorator).

        Args:
            name: registry key.
            factory: the component factory; omit to use as a decorator.
            override: replace an existing registration instead of raising.
            metadata: free-form attributes (e.g. ``kind="classifier"``)
                filterable via :meth:`names`.
        """
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self.register(name, fn, override=override, **metadata)
                return fn

            return decorator
        if name in self._factories and not override:
            raise DuplicateComponentError(self.kind, name)
        self._factories[name] = factory
        self._metadata[name] = dict(metadata)
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registration (test helper)."""
        self._factories.pop(name, None)
        self._metadata.pop(name, None)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Callable:
        """Return the factory registered under ``name``.

        Raises:
            UnknownComponentError: with a did-you-mean suggestion.
        """
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownComponentError(self.kind, str(name), list(self._factories)) from None

    def metadata(self, name: str) -> dict[str, Any]:
        """Return (a copy of) the metadata attached to ``name``."""
        self.get(name)
        return dict(self._metadata[name])

    def names(self, **match: Any) -> list[str]:
        """Sorted names, optionally filtered by metadata equality."""
        return sorted(
            name
            for name, meta in self._metadata.items()
            if all(meta.get(key) == value for key, value in match.items())
        )

    # ------------------------------------------------------------------ #
    # mapping protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {sorted(self._factories)})"


# --------------------------------------------------------------------------- #
# the singletons
# --------------------------------------------------------------------------- #
MODELS = Registry("model")
DATASETS = Registry("dataset")
ERROR_MODELS = Registry("error model")
PROTECTIONS = Registry("protection")
TASKS = Registry("task")
BACKENDS = Registry("backend")


def register_model(
    name: str,
    factory: Callable | None = None,
    *,
    kind: str = "classifier",
    override: bool = False,
) -> Callable:
    """Register a model factory (``kind``: ``"classifier"`` or ``"detector"``)."""
    return MODELS.register(name, factory, kind=kind, override=override)


def register_dataset(
    name: str,
    factory: Callable | None = None,
    *,
    task: str | None = None,
    override: bool = False,
) -> Callable:
    """Register a dataset factory, optionally tagged with its task family."""
    return DATASETS.register(name, factory, task=task, override=override)


def register_error_model(
    name: str, factory: Callable | None = None, *, override: bool = False
) -> Callable:
    """Register an error-model factory ``f(scenario) -> ErrorModel``.

    On success the name also becomes a legal ``rnd_value_type`` scenario
    value; a failed (duplicate) registration changes nothing.
    """
    from repro.alficore.scenario import register_value_type

    if factory is None:
        def decorator(fn: Callable) -> Callable:
            register_error_model(name, fn, override=override)
            return fn

        return decorator
    result = ERROR_MODELS.register(name, factory, override=override)
    register_value_type(name)
    return result


def unregister_error_model(name: str) -> None:
    """Remove an error model and its ``rnd_value_type`` whitelist entry."""
    from repro.alficore.scenario import unregister_value_type

    ERROR_MODELS.unregister(name)
    unregister_value_type(name)


def register_protection(
    name: str, factory: Callable | None = None, *, override: bool = False
) -> Callable:
    """Register a protection factory ``f(model, dataset, **params) -> Module``."""
    return PROTECTIONS.register(name, factory, override=override)


def register_task(name: str, plugin: Any = None, *, override: bool = False) -> Any:
    """Register an :class:`~repro.experiments.tasks.ExperimentTask` plug-in.

    Accepts an instance or a class (instantiated on registration), so the
    decorator form ``@register_task("seg")`` over a class works.
    """
    if plugin is None:
        def decorator(obj: Any) -> Any:
            register_task(name, obj, override=override)
            return obj

        return decorator
    if isinstance(plugin, type):
        plugin = plugin()
    return TASKS.register(name, plugin, override=override)


def register_backend(
    name: str, factory: Callable | None = None, *, override: bool = False
) -> Callable:
    """Register an execution backend ``f(core, backend_spec) -> (state, paths)``.

    A backend may also accept a third positional parameter — the spec's
    :class:`~repro.experiments.spec.ExecutionSpec` with the fault-tolerance
    knobs (retries, shard_timeout, backoff, resume); the runner detects the
    arity and keeps two-argument backends working unchanged.
    """
    return BACKENDS.register(name, factory, override=override)
