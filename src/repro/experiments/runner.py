"""The single campaign entry point: ``run(spec) -> CampaignResult``.

``run`` resolves every component of an :class:`ExperimentSpec` through the
central registries, assembles the task-pluggable
:class:`~repro.alficore.campaign.CampaignCore`, hands it to the selected
execution backend and returns a structured :class:`CampaignResult`.

Pre-built in-memory objects (a fitted model, a custom dataset, an existing
``ptfiwrap`` or even a fully configured ``CampaignCore``) can be supplied
via :class:`Artifacts`; anything not supplied is built from the spec.  The
deprecated facades delegate here with their already-constructed objects, so
facade runs and pure-spec runs share one code path — and byte-identical
outputs.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.alficore.campaign import CampaignCore, normalize_campaign_scenario
from repro.alficore.scenario import ScenarioConfig
from repro.alficore.goldencache import GoldenCache
from repro.alficore.results import CampaignResultWriter
from repro.alficore.wrapper import ptfiwrap
from repro.experiments.registry import BACKENDS, DATASETS, ERROR_MODELS, TASKS
from repro.experiments.result import CampaignResult
from repro.experiments.spec import (
    BackendSpec,
    CachingSpec,
    ComponentSpec,
    ExperimentSpec,
    SpecError,
)


def facade_spec(
    *,
    name: str,
    task: str,
    scenario: ScenarioConfig,
    workers: int = 1,
    num_shards: int | None = None,
    prefix_reuse: bool = True,
    input_shape: tuple[int, ...] | None = None,
    dl_shuffle: bool = False,
    output_dir: Path | None = None,
    task_options: dict | None = None,
) -> ExperimentSpec:
    """The spec a deprecated facade's configuration describes.

    Model and dataset are placeholders (the facade supplies the real objects
    through :class:`Artifacts`); the backend mirrors the facade's historic
    executor choice: any sharding request selects the sharded backend.
    """
    sharded = workers > 1 or (num_shards or 1) > 1
    # The facades accepted empty model names (result files like
    # "_corrupted_results.csv"); keep that working through spec validation.
    name = name or "campaign"
    return ExperimentSpec(
        name=name,
        task=task,
        model=ComponentSpec(name),
        dataset=ComponentSpec("in-memory"),
        scenario=scenario,
        backend=BackendSpec(
            name="sharded" if sharded else "serial", workers=workers, num_shards=num_shards
        ),
        caching=CachingSpec(prefix_reuse=prefix_reuse),
        input_shape=input_shape,
        dl_shuffle=dl_shuffle,
        output_dir=output_dir,
        task_options=dict(task_options or {}),
    )


def facade_run_scenario(
    base: ScenarioConfig,
    *,
    num_faults: int,
    inj_policy: str,
    num_runs: int,
    model_name: str,
    fault_file: str = "",
) -> ScenarioConfig:
    """The run-scenario one facade campaign call describes.

    An explicit (non-empty) ``fault_file`` argument overrides; a fault_file
    declared in the base scenario keeps replaying its stored matrix.
    """
    overrides: dict = {
        "max_faults_per_image": num_faults,
        "inj_policy": inj_policy,
        "num_runs": num_runs,
        "model_name": model_name,
    }
    if fault_file:
        overrides["fault_file"] = fault_file
    return base.copy(**overrides)


@dataclass
class Artifacts:
    """Pre-built objects overriding registry resolution in :func:`run`."""

    model: object | None = None
    resil_model: object | None = None
    dataset: object | None = None
    wrapper: ptfiwrap | None = None
    writer: CampaignResultWriter | None = None
    error_model: object | None = None
    custom_monitors: list[Callable] | None = None
    golden_cache: GoldenCache | None = None
    num_classes: int | None = None
    core: CampaignCore | None = None


def _build_core(spec: ExperimentSpec, plugin: Any, artifacts: Artifacts) -> CampaignCore:
    dataset = artifacts.dataset
    if dataset is None:
        dataset = DATASETS.get(spec.dataset.name)(**spec.dataset.params)
    scenario = normalize_campaign_scenario(spec.scenario, dataset)
    if scenario.model_name == "model":
        # The scenario's default sentinel: name result files and KPIs after
        # the spec's model instead of forcing every spec to repeat it.
        scenario = scenario.copy(model_name=spec.model.name)
    model = artifacts.model if artifacts.model is not None else plugin.build_model(spec, dataset)
    resil_model = artifacts.resil_model
    if resil_model is None and spec.protection is not None:
        resil_model = plugin.build_protection(spec, model, dataset)
    error_model = artifacts.error_model
    if error_model is None:
        error_model = ERROR_MODELS.get(scenario.rnd_value_type)(scenario)
    input_shape = spec.input_shape if spec.input_shape is not None else plugin.default_input_shape
    wrapper = artifacts.wrapper
    if wrapper is None:
        wrapper = ptfiwrap(model, scenario=scenario, input_shape=input_shape)
    writer = artifacts.writer
    if writer is None and spec.output_dir is not None:
        writer = CampaignResultWriter(Path(spec.output_dir), campaign_name=scenario.model_name)
    golden_cache = artifacts.golden_cache
    if golden_cache is None and spec.caching.golden_cache_mb > 0:
        golden_cache = GoldenCache(byte_budget=spec.caching.golden_cache_mb * 2**20)
    return CampaignCore(
        model,
        dataset,
        plugin.make_campaign_task(spec),
        scenario=scenario,
        writer=writer,
        error_model=error_model,
        input_shape=input_shape,
        custom_monitors=artifacts.custom_monitors,
        dl_shuffle=spec.dl_shuffle,
        resil_model=resil_model,
        wrapper=wrapper,
        prefix_reuse=spec.caching.prefix_reuse,
        golden_cache=golden_cache,
        executor=spec.execution.executor,
    )


def _call_backend(
    backend: Callable, core: CampaignCore, spec: ExperimentSpec
) -> tuple[Any, dict[str, str]]:
    """Invoke a backend, passing the execution section when it accepts one.

    Built-in backends take ``(core, backend_spec, execution_spec)``; custom
    backends registered before the execution section existed keep their
    historic two-argument signature and simply run without fault-tolerance
    knobs.
    """
    try:
        parameters = inspect.signature(backend).parameters
    except (TypeError, ValueError):
        parameters = None
    if parameters is not None and len(parameters) >= 3:
        return backend(core, spec.backend, spec.execution)
    return backend(core, spec.backend)


def run(spec: ExperimentSpec, artifacts: Artifacts | None = None) -> CampaignResult:
    """Execute the campaign one :class:`ExperimentSpec` describes.

    Args:
        spec: the declarative experiment description.
        artifacts: optional pre-built objects (see :class:`Artifacts`);
            anything not supplied is resolved through the registries.

    Returns:
        A structured :class:`CampaignResult` (summary, output-file map,
        lazy record iterators, shard-mergeable state).
    """
    from repro.experiments.builtins import register_builtins

    if spec.sweep is not None:
        raise SpecError(
            "spec declares a sweep: section — run it with "
            "repro.experiments.run_sweep(spec) or `pytorchalfi sweep <spec>`; "
            "run() executes exactly one campaign"
        )
    # Idempotent re-sync: pick up components added to the legacy
    # MODEL_REGISTRY/DETECTOR_REGISTRY dicts after repro.experiments was
    # first imported.
    register_builtins()
    artifacts = artifacts if artifacts is not None else Artifacts()
    plugin = TASKS.get(spec.task)
    spec.validate()
    core = artifacts.core
    if core is None:
        core = _build_core(spec, plugin, artifacts)
    elif core.writer is None and spec.output_dir is not None:
        # A pre-built core without a writer still honors the spec's
        # output_dir; streams open from core.writer at run start.
        core.writer = CampaignResultWriter(
            Path(spec.output_dir), campaign_name=core.scenario.model_name
        )
    backend = BACKENDS.get(spec.backend.name)
    state, stream_paths = _call_backend(backend, core, spec)
    execution_info = spec.execution.as_dict()
    # resume is a property of *this invocation*, not of the campaign: keeping
    # it out of the context (and hence the meta file) is what makes a resumed
    # run's outputs byte-identical to an uninterrupted one.
    execution_info.pop("resume", None)
    context = {
        "model_name": core.scenario.model_name,
        "execution": execution_info,
        "num_classes": (
            artifacts.num_classes
            if artifacts.num_classes is not None
            else plugin.resolve_num_classes(spec, core.dataset, core.model)
        ),
        "task_options": dict(spec.task_options),
    }
    evaluated, extras = plugin.evaluate(state, context)
    output_files = plugin.write_outputs(
        core.writer, core.scenario, core.wrapper, state, stream_paths, evaluated, context
    )
    return CampaignResult(
        spec=spec,
        task=spec.task,
        summary=plugin.summarize(evaluated, output_files),
        output_files=output_files,
        state=state,
        results=evaluated,
        extras=extras,
        context=context,
        wrapper=core.wrapper,
        core=core,
    )
