"""Deterministic markdown API-reference generator and docstring auditor.

One markdown page per documented module: the module docstring, then every
public class (with its public methods) and function, each with its
signature and full docstring.  Member order is sorted by name, signatures
come from :func:`inspect.signature` and no timestamps are embedded, so the
output is a pure function of the source tree — ``--check`` mode simply
regenerates and compares bytes.
"""

from __future__ import annotations

import importlib
import inspect
import re
import textwrap
from dataclasses import dataclass, field
from pathlib import Path
from types import ModuleType
from typing import Callable

# Modules that get a generated page under docs/api/.  Order defines the
# index page; names map to files by replacing dots with dashes.
API_MODULES: tuple[str, ...] = (
    "repro.experiments",
    "repro.experiments.spec",
    "repro.experiments.builder",
    "repro.experiments.runner",
    "repro.experiments.registry",
    "repro.experiments.result",
    "repro.experiments.sweep",
    "repro.experiments.campaigns.store",
    "repro.nn",
    "repro.nn.forward_plan",
    "repro.nn.ir",
    "repro.nn.fuse",
    "repro.nn.functional",
    "repro.alficore.campaign",
    "repro.alficore.wrapper",
    "repro.alficore.scenario",
    "repro.alficore.monitoring",
    "repro.alficore.resilience",
    "repro.alficore.digests",
    "repro.alficore.goldencache",
    "repro.alficore.results",
    "repro.models",
    "repro.data",
    "repro.docs",
)

# Modules held to a 100% public-docstring bar: the mypy strict subset plus
# the subsystems the architecture guide documents in detail.
COVERAGE_MODULES: tuple[str, ...] = (
    "repro.experiments",
    "repro.experiments.spec",
    "repro.experiments.builder",
    "repro.experiments.runner",
    "repro.experiments.registry",
    "repro.experiments.result",
    "repro.experiments.sweep",
    "repro.experiments.campaigns.store",
    "repro.nn.forward_plan",
    "repro.nn.ir",
    "repro.nn.fuse",
    "repro.alficore.resilience",
    "repro.alficore.digests",
    "repro.alficore.goldencache",
    "repro.docs",
)


def _public_names(module: ModuleType) -> list[str]:
    """The module's documented surface: ``__all__`` or defined public names."""
    declared = getattr(module, "__all__", None)
    if declared is not None:
        return sorted(str(name) for name in declared)
    names = []
    for name, obj in vars(module).items():
        if name.startswith("_") or isinstance(obj, ModuleType):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        names.append(name)
    return sorted(names)


def _signature(obj: Callable) -> str:
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    # Default-value reprs of functions/objects embed memory addresses;
    # scrub them so the rendered pages are byte-deterministic.
    text = re.sub(r"<function ([\w.<>]+) at 0x[0-9a-fA-F]+>", r"\1", text)
    return re.sub(r"<([\w.]+) object at 0x[0-9a-fA-F]+>", r"<\1>", text)


def _doc(obj: object) -> str:
    raw = inspect.getdoc(obj)
    return raw.strip() if raw else ""


def _public_methods(cls: type) -> list[tuple[str, Callable]]:
    methods = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_") and name != "__init__":
            continue
        func = member
        if isinstance(member, (staticmethod, classmethod)):
            func = member.__func__
        elif isinstance(member, property):
            methods.append((name, member.fget or (lambda self: None)))
            continue
        if not inspect.isfunction(func):
            continue
        if name == "__init__" and not _doc(func):
            continue
        methods.append((name, func))
    return methods


def render_module(module_name: str) -> str:
    """Render one module's markdown API page."""
    module = importlib.import_module(module_name)
    lines = [f"# `{module_name}`", ""]
    module_doc = _doc(module)
    if module_doc:
        lines += [module_doc, ""]
    classes: list[tuple[str, type]] = []
    functions: list[tuple[str, Callable]] = []
    constants: list[str] = []
    for name in _public_names(module):
        obj = getattr(module, name, None)
        if obj is None and name not in vars(module):
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif callable(obj):
            functions.append((name, obj))
        elif not isinstance(obj, ModuleType):
            constants.append(name)
    if classes:
        lines += ["## Classes", ""]
        for name, cls in classes:
            lines += [f"### `{name}{_signature(cls)}`", ""]
            doc = _doc(cls)
            if doc:
                lines += [doc, ""]
            for method_name, func in _public_methods(cls):
                shown = "\\_\\_init\\_\\_" if method_name == "__init__" else method_name
                lines += [f"#### `{name}.{shown}{_signature(func)}`", ""]
                method_doc = _doc(func)
                if method_doc:
                    lines += [textwrap.indent(method_doc, "")] + [""]
    if functions:
        lines += ["## Functions", ""]
        for name, func in functions:
            lines += [f"### `{name}{_signature(func)}`", ""]
            doc = _doc(func)
            if doc:
                lines += [doc, ""]
    if constants:
        lines += ["## Constants", ""]
        for name in constants:
            lines += [f"* `{name}`"]
        lines += [""]
    return "\n".join(lines).rstrip() + "\n"


def _page_name(module_name: str) -> str:
    return module_name.replace(".", "-") + ".md"


def _render_index() -> str:
    lines = [
        "# API reference",
        "",
        "Generated by `python -m repro.docs build` — do not edit by hand;",
        "CI checks these pages against the source tree (`build --check`).",
        "",
    ]
    for module_name in API_MODULES:
        module = importlib.import_module(module_name)
        doc = _doc(module)
        summary = doc.splitlines()[0] if doc else ""
        lines.append(f"* [`{module_name}`]({_page_name(module_name)}) — {summary}")
    return "\n".join(lines).rstrip() + "\n"


def build_api_reference(out_dir: Path) -> list[Path]:
    """Write every API page (and the index) under ``out_dir``; return paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for module_name in API_MODULES:
        path = out_dir / _page_name(module_name)
        path.write_text(render_module(module_name))
        written.append(path)
    index = out_dir / "index.md"
    index.write_text(_render_index())
    written.append(index)
    return written


def check_api_reference(out_dir: Path) -> list[str]:
    """Names of pages whose checked-in content drifted from the source tree."""
    expected: dict[str, str] = {
        _page_name(name): render_module(name) for name in API_MODULES
    }
    expected["index.md"] = _render_index()
    stale = []
    for name, content in expected.items():
        path = out_dir / name
        if not path.exists() or path.read_text() != content:
            stale.append(name)
    for path in sorted(out_dir.glob("*.md")):
        if path.name not in expected:
            stale.append(f"{path.name} (unexpected)")
    return sorted(stale)


@dataclass
class ModuleCoverage:
    """Docstring-coverage tally of one module's public surface."""

    module: str
    total: int = 0
    documented: int = 0
    missing: list[str] = field(default_factory=list)

    @property
    def percent(self) -> float:
        """Documented fraction in percent (an empty surface counts as 100)."""
        return 100.0 * self.documented / self.total if self.total else 100.0

    def count(self, label: str, obj: object) -> None:
        """Tally one public member."""
        self.total += 1
        if _doc(obj):
            self.documented += 1
        else:
            self.missing.append(label)


def docstring_coverage(module_names: tuple[str, ...] = COVERAGE_MODULES) -> list[ModuleCoverage]:
    """Audit public docstrings (module, classes, methods, functions)."""
    reports = []
    for module_name in module_names:
        module = importlib.import_module(module_name)
        report = ModuleCoverage(module_name)
        report.count(module_name, module)
        for name in _public_names(module):
            obj = getattr(module, name, None)
            if inspect.isclass(obj):
                report.count(name, obj)
                for method_name, func in _public_methods(obj):
                    if method_name in vars(obj):
                        report.count(f"{name}.{method_name}", func)
            elif callable(obj):
                report.count(name, obj)
        reports.append(report)
    return reports
