"""Documentation tooling: API-reference generation and docstring coverage.

The repository's documentation lives in ``docs/``:

* hand-written guides (``docs/architecture.md``, ``docs/ir.md``);
* a generated, checked-in API reference (``docs/api/*.md``).

This package is the generator.  It is dependency-free (pure stdlib
introspection) so the docs build runs anywhere the library itself runs —
no pdoc/mkdocs install required — while ``mkdocs.yml`` is still checked in
for rendering the same tree to HTML where mkdocs is available.

Command line (see ``python -m repro.docs --help``)::

    python -m repro.docs build            # regenerate docs/api/
    python -m repro.docs build --check    # CI: fail if checked-in files drift
    python -m repro.docs coverage         # docstring coverage report
    python -m repro.docs coverage --fail-under 100

Generation is deterministic (stable member ordering, no timestamps), so
``build --check`` doubles as a reproducibility test of the docs themselves.
"""

from repro.docs.apigen import (
    API_MODULES,
    COVERAGE_MODULES,
    ModuleCoverage,
    build_api_reference,
    check_api_reference,
    docstring_coverage,
    render_module,
)

__all__ = [
    "API_MODULES",
    "COVERAGE_MODULES",
    "ModuleCoverage",
    "build_api_reference",
    "check_api_reference",
    "docstring_coverage",
    "render_module",
]
