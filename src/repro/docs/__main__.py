"""``python -m repro.docs`` — build/check the API reference, audit docstrings."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.docs.apigen import build_api_reference, check_api_reference, docstring_coverage

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "docs" / "api"


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro.docs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    build = sub.add_parser("build", help="regenerate docs/api/ (or verify with --check)")
    build.add_argument("--out", type=Path, default=DEFAULT_OUT, help="output directory")
    build.add_argument(
        "--check",
        action="store_true",
        help="do not write; fail if the checked-in pages drifted from the source tree",
    )
    coverage = sub.add_parser("coverage", help="docstring coverage of the documented modules")
    coverage.add_argument(
        "--fail-under",
        type=float,
        default=100.0,
        help="minimum per-module documented percentage (default: 100)",
    )
    args = parser.parse_args(argv)

    if args.command == "build":
        if args.check:
            stale = check_api_reference(args.out)
            if stale:
                print("API reference is stale — run `python -m repro.docs build`:")
                for name in stale:
                    print(f"  docs/api/{name}")
                return 1
            print(f"API reference up to date ({args.out})")
            return 0
        written = build_api_reference(args.out)
        print(f"wrote {len(written)} pages to {args.out}")
        return 0

    failed = False
    for report in docstring_coverage():
        status = "ok" if report.percent >= args.fail_under else "FAIL"
        print(
            f"{status:4} {report.module:40} "
            f"{report.documented}/{report.total} ({report.percent:.1f}%)"
        )
        if report.percent < args.fail_under:
            failed = True
            for label in report.missing:
                print(f"     missing: {label}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
