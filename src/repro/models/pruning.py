"""Magnitude pruning of zoo models.

One of the use cases the paper lists for PyTorchALFI is comparing the fault
robustness of an original network against a pruned version of it.  This
module provides global unstructured magnitude pruning: the smallest-magnitude
fraction of conv/linear weights is set to zero in a copy of the model.  The
pruned copy preserves the layer structure, so the exact same fault matrix can
be replayed against the original and the pruned variant.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Conv2d, Conv3d, Linear
from repro.nn.module import Module

PRUNABLE_TYPES = (Conv2d, Conv3d, Linear)


def prunable_weight_count(model: Module) -> int:
    """Total number of weights in prunable (conv/linear) layers."""
    return sum(
        module.weight.size
        for _, module in model.named_modules()
        if isinstance(module, PRUNABLE_TYPES)
    )


def sparsity(model: Module) -> float:
    """Fraction of prunable weights that are exactly zero."""
    total = 0
    zeros = 0
    for _, module in model.named_modules():
        if isinstance(module, PRUNABLE_TYPES):
            total += module.weight.size
            zeros += int((module.weight.data == 0.0).sum())
    return zeros / total if total else 0.0


def prune_by_magnitude(model: Module, amount: float) -> Module:
    """Return a copy of ``model`` with the smallest weights zeroed globally.

    Args:
        model: the model to prune (left unmodified).
        amount: fraction of all prunable weights to zero, in ``[0, 1)``.

    Returns:
        A pruned deep copy with identical layer structure.
    """
    if not 0.0 <= amount < 1.0:
        raise ValueError(f"prune amount must be in [0, 1), got {amount}")
    pruned = model.clone()
    if amount == 0.0:
        return pruned

    magnitudes = [
        np.abs(module.weight.data).ravel()
        for _, module in pruned.named_modules()
        if isinstance(module, PRUNABLE_TYPES)
    ]
    if not magnitudes:
        raise ValueError("model has no prunable conv/linear layers")
    all_magnitudes = np.concatenate(magnitudes)
    threshold = float(np.quantile(all_magnitudes, amount))

    for _, module in pruned.named_modules():
        if isinstance(module, PRUNABLE_TYPES):
            weight = module.weight.data
            weight[np.abs(weight) <= threshold] = 0.0
    return pruned
