"""Model zoo used in the fault injection experiments.

The paper evaluates PyTorchALFI on torchvision classification models
(AlexNet, VGG-16, ResNet-50) and on object detectors (YoloV3, RetinaNet,
Faster-RCNN).  Since no pre-trained weights can be downloaded offline, the
zoo provides architecture-faithful, deterministically-initialised and
optionally width-scaled variants of the same families:

* classification: :func:`lenet5`, :func:`alexnet`, :func:`vgg11`,
  :func:`vgg16`, :func:`resnet18`, :func:`resnet50`, :func:`mlp`
* detection (see :mod:`repro.models.detection`): ``yolov3_tiny``,
  ``retinanet_lite``, ``faster_rcnn_lite``

What matters for the fault injection study is the architecture *shape*
(number and relative size of conv/linear layers, activation/normalisation
placement), which these models reproduce.
"""

from repro.models.classification import (
    MODEL_REGISTRY,
    AlexNet,
    LeNet5,
    MLP,
    ResNet,
    VGG,
    alexnet,
    build_model,
    lenet5,
    mlp,
    resnet18,
    resnet50,
    vgg11,
    vgg16,
)
from repro.models.compact import (
    ElemNet,
    MobileNetLite,
    SqueezeNetLite,
    elemnet,
    mobilenet_lite,
    squeezenet_lite,
)

__all__ = [
    "MODEL_REGISTRY",
    "AlexNet",
    "ElemNet",
    "LeNet5",
    "MLP",
    "MobileNetLite",
    "ResNet",
    "SqueezeNetLite",
    "VGG",
    "alexnet",
    "build_model",
    "elemnet",
    "lenet5",
    "mlp",
    "mobilenet_lite",
    "resnet18",
    "resnet50",
    "squeezenet_lite",
    "vgg11",
    "vgg16",
]
