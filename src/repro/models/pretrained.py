"""Analytic "pre-training" of classifier heads.

The paper's campaigns start from *pre-trained* torchvision models.  Offline,
no trained weights can be downloaded, and training deep CNNs in pure numpy
would dominate the runtime budget.  Instead the zoo models are turned into
usable classifiers by keeping their random convolutional feature extractor
and fitting only the final linear layer analytically (ridge regression onto
one-hot labels over a calibration split of the synthetic dataset).  Random
convolutional features are a well-known strong baseline on synthetic,
prototype-based data, so the fitted models reach high fault-free accuracy —
which is what makes SDE rates meaningful (a fault must flip a *correct*
decision for the campaign to resemble the paper's setting).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear
from repro.nn.module import Module


def _find_final_linear(model: Module) -> tuple[Module, str, Linear]:
    """Locate the last Linear layer of the model and its parent module."""
    last: tuple[Module, str, Linear] | None = None
    for name, module in model.named_modules():
        if isinstance(module, Linear):
            parent_path, _, child_name = name.rpartition(".")
            parent = model.get_submodule(parent_path)
            last = (parent, child_name, module)
    if last is None:
        raise ValueError("model contains no Linear layer to fit")
    return last


def extract_penultimate_features(model: Module, images: np.ndarray) -> np.ndarray:
    """Run the model and capture the input features of its final Linear layer."""
    _, _, final_linear = _find_final_linear(model)
    captured: dict[str, np.ndarray] = {}

    def hook(module, inputs, output):
        captured["features"] = np.asarray(inputs[0])
        return None

    handle = final_linear.register_forward_hook(hook)
    try:
        model(np.asarray(images, dtype=np.float32))
    finally:
        handle.remove()
    if "features" not in captured:
        raise RuntimeError("final Linear layer was not executed during the forward pass")
    return captured["features"]


def fit_classifier_head(
    model: Module,
    dataset,
    num_classes: int,
    calibration_size: int | None = None,
    ridge: float = 1e-3,
    batch_size: int = 16,
) -> Module:
    """Fit the final Linear layer of ``model`` on a calibration split.

    Args:
        model: a classification model from the zoo (modified in place and
            also returned for chaining).
        dataset: map-style dataset yielding ``(image, label)``.
        num_classes: number of classes (output width of the final layer).
        calibration_size: how many samples to use; defaults to the whole set.
        ridge: L2 regularisation strength of the closed-form fit.
        batch_size: feature-extraction batch size.

    Returns:
        The same model instance with a fitted final layer.
    """
    size = len(dataset) if calibration_size is None else min(calibration_size, len(dataset))
    if size <= 0:
        raise ValueError("calibration split is empty")
    # Inference mode: dropout layers must be inactive both while extracting
    # calibration features and during the later fault injection campaigns.
    model.eval()
    parent, child_name, final_linear = _find_final_linear(model)
    if final_linear.out_features != num_classes:
        raise ValueError(
            f"final layer has {final_linear.out_features} outputs, expected {num_classes}"
        )
    images = []
    labels = []
    for index in range(size):
        image, label = dataset[index]
        images.append(np.asarray(image, dtype=np.float32))
        labels.append(int(label))
    features_list = []
    for start in range(0, size, batch_size):
        batch = np.stack(images[start : start + batch_size])
        features_list.append(extract_penultimate_features(model, batch))
    features = np.concatenate(features_list, axis=0).astype(np.float64)
    targets = np.zeros((size, num_classes), dtype=np.float64)
    targets[np.arange(size), labels] = 1.0

    # Standardise features before the fit (deep random feature extractors can
    # have wildly different per-feature scales); the normalisation is folded
    # back into the fitted weights afterwards so inference stays unchanged.
    feature_mean = features.mean(axis=0)
    feature_std = features.std(axis=0)
    feature_std = np.where(feature_std < 1e-6, 1.0, feature_std)
    normalized = (features - feature_mean) / feature_std

    # Closed-form ridge regression with a bias column.
    augmented = np.concatenate([normalized, np.ones((size, 1))], axis=1)
    gram = augmented.T @ augmented + ridge * np.eye(augmented.shape[1])
    solution = np.linalg.solve(gram, augmented.T @ targets)
    weight_normalized = solution[:-1].T  # (num_classes, features)
    bias_normalized = solution[-1]

    weight = weight_normalized / feature_std[None, :]
    bias = bias_normalized - weight @ feature_mean

    # Scale the logits so softmax saturates on correct decisions; this keeps
    # golden top-1 decisions stable against numerically tiny perturbations.
    scale = 8.0 / max(np.abs(weight @ features.T + bias[:, None]).max(), 1e-6)
    final_linear.weight.copy_((weight * scale).astype(np.float32))
    if final_linear.bias is not None:
        final_linear.bias.copy_((bias * scale).astype(np.float32))
    del parent, child_name
    return model


def pretrained_classifier(
    factory,
    dataset,
    num_classes: int,
    calibration_size: int | None = None,
    **factory_kwargs,
) -> Module:
    """Build a zoo model and fit its classifier head in one call."""
    model = factory(num_classes=num_classes, **factory_kwargs)
    return fit_classifier_head(model, dataset, num_classes, calibration_size)
