"""Object-detection model zoo.

Stand-ins for the YoloV3 / RetinaNet / Faster-RCNN detectors the paper
evaluates.  Each detector is a real convolutional network built on
:mod:`repro.nn` whose conv layers are valid fault-injection targets; the
heads decode grid/anchor predictions into ``(boxes, scores, labels)``
detections, so corrupted activations or weights manifest as missing, moved
or spurious boxes — exactly what the IVMOD metric quantifies.
"""

from repro.models.detection.anchors import generate_anchor_grid
from repro.models.detection.boxes import box_iou, clip_boxes, nms, xywh_to_xyxy, xyxy_to_xywh
from repro.models.detection.detectors import (
    DETECTOR_REGISTRY,
    Detection,
    FasterRCNNLite,
    RetinaNetLite,
    YoloV3Tiny,
    build_detector,
    faster_rcnn_lite,
    retinanet_lite,
    yolov3_tiny,
)

__all__ = [
    "DETECTOR_REGISTRY",
    "Detection",
    "FasterRCNNLite",
    "RetinaNetLite",
    "YoloV3Tiny",
    "box_iou",
    "build_detector",
    "clip_boxes",
    "faster_rcnn_lite",
    "generate_anchor_grid",
    "nms",
    "retinanet_lite",
    "xywh_to_xyxy",
    "xyxy_to_xywh",
    "yolov3_tiny",
]
