"""Bounding-box utilities: format conversion, IoU and non-maximum suppression.

Boxes are stored as ``(x1, y1, x2, y2)`` in absolute pixel coordinates unless
noted otherwise, matching the CoCo evaluation convention used by the result
pipeline.
"""

from __future__ import annotations

import numpy as np


def xywh_to_xyxy(boxes: np.ndarray) -> np.ndarray:
    """Convert ``(x, y, w, h)`` boxes (CoCo annotation format) to corners."""
    boxes = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
    converted = boxes.copy()
    converted[:, 2] = boxes[:, 0] + boxes[:, 2]
    converted[:, 3] = boxes[:, 1] + boxes[:, 3]
    return converted


def xyxy_to_xywh(boxes: np.ndarray) -> np.ndarray:
    """Convert corner boxes to the ``(x, y, w, h)`` CoCo annotation format."""
    boxes = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
    converted = boxes.copy()
    converted[:, 2] = boxes[:, 2] - boxes[:, 0]
    converted[:, 3] = boxes[:, 3] - boxes[:, 1]
    return converted


def clip_boxes(boxes: np.ndarray, image_size: tuple[int, int]) -> np.ndarray:
    """Clip corner boxes to the image extent ``(height, width)``."""
    height, width = image_size
    boxes = np.asarray(boxes, dtype=np.float32).reshape(-1, 4).copy()
    boxes[:, 0] = np.clip(boxes[:, 0], 0, width)
    boxes[:, 1] = np.clip(boxes[:, 1], 0, height)
    boxes[:, 2] = np.clip(boxes[:, 2], 0, width)
    boxes[:, 3] = np.clip(boxes[:, 3], 0, height)
    return boxes


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Area of corner-format boxes (clamped at zero)."""
    boxes = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
    widths = np.maximum(boxes[:, 2] - boxes[:, 0], 0.0)
    heights = np.maximum(boxes[:, 3] - boxes[:, 1], 0.0)
    return widths * heights


def box_iou(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-union between two corner-format box sets.

    Args:
        boxes_a: array of shape ``(A, 4)``.
        boxes_b: array of shape ``(B, 4)``.

    Returns:
        IoU matrix of shape ``(A, B)`` with values in ``[0, 1]``.
    """
    boxes_a = np.asarray(boxes_a, dtype=np.float32).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=np.float32).reshape(-1, 4)
    if len(boxes_a) == 0 or len(boxes_b) == 0:
        return np.zeros((len(boxes_a), len(boxes_b)), dtype=np.float32)

    left = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    top = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    right = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    bottom = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])

    intersection = np.maximum(right - left, 0.0) * np.maximum(bottom - top, 0.0)
    union = box_area(boxes_a)[:, None] + box_area(boxes_b)[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, intersection / union, 0.0)
    return iou.astype(np.float32)


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5) -> np.ndarray:
    """Greedy non-maximum suppression.

    Args:
        boxes: corner-format boxes of shape ``(N, 4)``.
        scores: confidence scores of shape ``(N,)``.
        iou_threshold: boxes overlapping a kept box above this IoU are dropped.

    Returns:
        Indices of kept boxes, sorted by decreasing score.
    """
    boxes = np.asarray(boxes, dtype=np.float32).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float32).reshape(-1)
    if len(boxes) != len(scores):
        raise ValueError(f"boxes ({len(boxes)}) and scores ({len(scores)}) length mismatch")
    if len(boxes) == 0:
        return np.zeros((0,), dtype=np.int64)

    order = np.argsort(-scores, kind="stable")
    keep: list[int] = []
    while len(order) > 0:
        current = int(order[0])
        keep.append(current)
        if len(order) == 1:
            break
        remaining = order[1:]
        ious = box_iou(boxes[current : current + 1], boxes[remaining]).reshape(-1)
        order = remaining[ious <= iou_threshold]
    return np.asarray(keep, dtype=np.int64)
