"""Anchor-grid generation for single-stage detectors."""

from __future__ import annotations

import numpy as np


def generate_anchor_grid(
    feature_size: tuple[int, int],
    image_size: tuple[int, int],
    anchor_sizes: tuple[float, ...] = (16.0, 32.0),
    aspect_ratios: tuple[float, ...] = (1.0,),
) -> np.ndarray:
    """Generate anchor boxes centred on every cell of a feature map.

    Args:
        feature_size: ``(fh, fw)`` spatial size of the feature map.
        image_size: ``(height, width)`` of the input image in pixels.
        anchor_sizes: square-root areas of the anchors, in pixels.
        aspect_ratios: width/height ratios applied to every anchor size.

    Returns:
        Corner-format anchors of shape ``(fh * fw * A, 4)`` where
        ``A = len(anchor_sizes) * len(aspect_ratios)``; anchor ordering is
        row-major over cells, then sizes, then ratios.
    """
    fh, fw = feature_size
    height, width = image_size
    if fh <= 0 or fw <= 0:
        raise ValueError(f"feature size must be positive, got {feature_size}")

    stride_y = height / fh
    stride_x = width / fw

    centers_y = (np.arange(fh, dtype=np.float32) + 0.5) * stride_y
    centers_x = (np.arange(fw, dtype=np.float32) + 0.5) * stride_x

    shapes = []
    for size in anchor_sizes:
        for ratio in aspect_ratios:
            anchor_w = size * np.sqrt(ratio)
            anchor_h = size / np.sqrt(ratio)
            shapes.append((anchor_w, anchor_h))

    anchors = np.zeros((fh, fw, len(shapes), 4), dtype=np.float32)
    for idx, (anchor_w, anchor_h) in enumerate(shapes):
        cy, cx = np.meshgrid(centers_y, centers_x, indexing="ij")
        anchors[:, :, idx, 0] = cx - anchor_w / 2
        anchors[:, :, idx, 1] = cy - anchor_h / 2
        anchors[:, :, idx, 2] = cx + anchor_w / 2
        anchors[:, :, idx, 3] = cy + anchor_h / 2
    return anchors.reshape(-1, 4)


def decode_offsets(anchors: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Apply predicted ``(dx, dy, dw, dh)`` offsets to anchors.

    The encoding follows the standard R-CNN box regression parameterisation:
    centre shifts are relative to the anchor size and width/height are scaled
    exponentially.  ``dw``/``dh`` are clamped so that corrupted activations
    cannot overflow to infinite box sizes before the NaN/Inf monitor sees the
    raw tensors.
    """
    anchors = np.asarray(anchors, dtype=np.float32).reshape(-1, 4)
    offsets = np.asarray(offsets, dtype=np.float32).reshape(-1, 4)
    if anchors.shape != offsets.shape:
        raise ValueError(f"anchors {anchors.shape} and offsets {offsets.shape} mismatch")

    anchor_w = anchors[:, 2] - anchors[:, 0]
    anchor_h = anchors[:, 3] - anchors[:, 1]
    anchor_cx = anchors[:, 0] + anchor_w / 2
    anchor_cy = anchors[:, 1] + anchor_h / 2

    dx, dy, dw, dh = offsets[:, 0], offsets[:, 1], offsets[:, 2], offsets[:, 3]
    dw = np.clip(dw, -4.0, 4.0)
    dh = np.clip(dh, -4.0, 4.0)

    pred_cx = anchor_cx + dx * anchor_w
    pred_cy = anchor_cy + dy * anchor_h
    pred_w = anchor_w * np.exp(dw)
    pred_h = anchor_h * np.exp(dh)

    boxes = np.stack(
        [
            pred_cx - pred_w / 2,
            pred_cy - pred_h / 2,
            pred_cx + pred_w / 2,
            pred_cy + pred_h / 2,
        ],
        axis=1,
    )
    return boxes.astype(np.float32)
