"""Object detectors built on the :mod:`repro.nn` substrate.

Three detector families mirror the models evaluated in the paper:

* :class:`YoloV3Tiny` -- a single-scale grid detector with a Darknet-style
  backbone (conv + leaky ReLU stacks) and a YOLO head that predicts
  objectness, class scores and box offsets per grid cell.
* :class:`RetinaNetLite` -- an anchor-based one-stage detector with separate
  classification and box-regression conv head over a small feature pyramid.
* :class:`FasterRCNNLite` -- a simplified two-stage detector: a proposal head
  scores anchors, the top proposals are classified and refined by a second
  head on pooled features.

All three consume ``(N, 3, H, W)`` images (64x64 by default) and return a
list of :class:`Detection` objects, one per image, holding corner-format
boxes, scores and integer class labels.  Because every stage is an ordinary
conv/linear layer of the substrate, PyTorchALFI can inject neuron or weight
faults into any of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import nn
from repro.models.detection.anchors import decode_offsets, generate_anchor_grid
from repro.models.detection.boxes import clip_boxes, nms
from repro.nn import functional as F, init
from repro.nn.module import Module


@dataclass
class Detection:
    """Per-image detection result.

    Attributes:
        boxes: corner-format boxes, shape ``(K, 4)``.
        scores: confidence scores, shape ``(K,)``.
        labels: integer class ids, shape ``(K,)``.
    """

    boxes: np.ndarray = field(default_factory=lambda: np.zeros((0, 4), dtype=np.float32))
    scores: np.ndarray = field(default_factory=lambda: np.zeros((0,), dtype=np.float32))
    labels: np.ndarray = field(default_factory=lambda: np.zeros((0,), dtype=np.int64))

    def __len__(self) -> int:
        return len(self.scores)

    def as_dict(self) -> dict:
        """Return a JSON-friendly representation of the detections."""
        return {
            "boxes": np.asarray(self.boxes, dtype=float).reshape(-1, 4).tolist(),
            "scores": np.asarray(self.scores, dtype=float).reshape(-1).tolist(),
            "labels": np.asarray(self.labels, dtype=int).reshape(-1).tolist(),
        }

    def _value_arrays(self) -> list[np.ndarray]:
        return [np.asarray(self.boxes, dtype=np.float64), np.asarray(self.scores, dtype=np.float64)]

    def has_nan(self) -> bool:
        """True if any box coordinate or score is NaN."""
        return any(bool(np.isnan(v).any()) for v in self._value_arrays() if v.size)

    def has_inf(self) -> bool:
        """True if any box coordinate or score is infinite."""
        return any(bool(np.isinf(v).any()) for v in self._value_arrays() if v.size)

    def has_nan_or_inf(self) -> bool:
        """True if any box coordinate or score is NaN or infinite."""
        return self.has_nan() or self.has_inf()


def _conv_block(in_channels: int, out_channels: int, rng: np.random.Generator, stride: int = 1) -> nn.Sequential:
    """Conv + BatchNorm + LeakyReLU block used by the Darknet-style backbone."""
    return nn.Sequential(
        nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(out_channels),
        nn.LeakyReLU(0.1),
    )


class YoloV3Tiny(Module):
    """Single-scale YOLO-style detector.

    The backbone downsamples the input by 8x; the head predicts, per grid
    cell and anchor, ``(tx, ty, tw, th, objectness, class scores...)``.
    """

    def __init__(
        self,
        num_classes: int = 5,
        image_size: tuple[int, int] = (64, 64),
        width: float = 0.5,
        seed: int = 0,
        score_threshold: float = 0.3,
        nms_threshold: float = 0.45,
    ):
        super().__init__()
        rng = init.make_rng(seed)
        c1 = max(8, int(16 * width))
        c2, c3 = c1 * 2, c1 * 4
        self.backbone = nn.Sequential(
            _conv_block(3, c1, rng),
            nn.MaxPool2d(2),
            _conv_block(c1, c2, rng),
            nn.MaxPool2d(2),
            _conv_block(c2, c3, rng),
            nn.MaxPool2d(2),
            _conv_block(c3, c3, rng),
        )
        self.anchor_sizes = (12.0, 24.0)
        self.num_anchors = len(self.anchor_sizes)
        self.num_classes = num_classes
        self.image_size = image_size
        self.score_threshold = score_threshold
        self.nms_threshold = nms_threshold
        outputs_per_anchor = 5 + num_classes
        self.head = nn.Conv2d(c3, self.num_anchors * outputs_per_anchor, 1, rng=rng)

    def forward(self, x: np.ndarray) -> list[Detection]:
        features = self.backbone(x)
        raw = self.head(features)
        return self._decode(raw)

    def _decode(self, raw: np.ndarray) -> list[Detection]:
        batch, _, fh, fw = raw.shape
        outputs_per_anchor = 5 + self.num_classes
        raw = raw.reshape(batch, self.num_anchors, outputs_per_anchor, fh, fw)
        anchors = generate_anchor_grid((fh, fw), self.image_size, self.anchor_sizes)
        detections: list[Detection] = []
        for index in range(batch):
            # (anchors, outputs, fh, fw) -> (fh*fw*anchors, outputs), cell-major
            per_image = raw[index].transpose(2, 3, 0, 1).reshape(-1, outputs_per_anchor)
            offsets = per_image[:, 0:4] * 0.1
            objectness = F.sigmoid(per_image[:, 4])
            class_probs = F.softmax(per_image[:, 5:], axis=1)
            labels = np.argmax(class_probs, axis=1)
            scores = objectness * class_probs[np.arange(len(labels)), labels]
            boxes = decode_offsets(anchors, offsets)
            detections.append(self._select(boxes, scores, labels))
        return detections

    def _select(self, boxes: np.ndarray, scores: np.ndarray, labels: np.ndarray) -> Detection:
        keep_mask = scores >= self.score_threshold
        # NaN scores must survive selection so the DUE monitor can see them.
        keep_mask |= ~np.isfinite(scores)
        boxes, scores, labels = boxes[keep_mask], scores[keep_mask], labels[keep_mask]
        if len(scores) == 0:
            return Detection()
        boxes = clip_boxes(boxes, self.image_size)
        finite = np.isfinite(scores) & np.isfinite(boxes).all(axis=1)
        kept_parts = []
        if finite.any():
            keep = nms(boxes[finite], scores[finite], self.nms_threshold)
            kept_parts.append(
                (boxes[finite][keep], scores[finite][keep], labels[finite][keep])
            )
        if (~finite).any():
            kept_parts.append((boxes[~finite], scores[~finite], labels[~finite]))
        boxes = np.concatenate([p[0] for p in kept_parts], axis=0)
        scores = np.concatenate([p[1] for p in kept_parts], axis=0)
        labels = np.concatenate([p[2] for p in kept_parts], axis=0)
        return Detection(boxes=boxes, scores=scores, labels=labels.astype(np.int64))


class RetinaNetLite(Module):
    """Anchor-based one-stage detector with separate class and box heads."""

    def __init__(
        self,
        num_classes: int = 5,
        image_size: tuple[int, int] = (64, 64),
        width: float = 0.5,
        seed: int = 0,
        score_threshold: float = 0.3,
        nms_threshold: float = 0.5,
    ):
        super().__init__()
        rng = init.make_rng(seed)
        c1 = max(8, int(16 * width))
        c2, c3 = c1 * 2, c1 * 4
        self.backbone = nn.Sequential(
            nn.Conv2d(3, c1, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(c1),
            nn.ReLU(),
            nn.Conv2d(c1, c2, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(c2),
            nn.ReLU(),
            nn.Conv2d(c2, c3, 3, stride=2, padding=1, rng=rng),
            nn.BatchNorm2d(c3),
            nn.ReLU(),
        )
        self.anchor_sizes = (10.0, 20.0, 32.0)
        self.aspect_ratios = (0.5, 1.0, 2.0)
        self.num_anchors = len(self.anchor_sizes) * len(self.aspect_ratios)
        self.num_classes = num_classes
        self.image_size = image_size
        self.score_threshold = score_threshold
        self.nms_threshold = nms_threshold
        self.cls_head = nn.Sequential(
            nn.Conv2d(c3, c3, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c3, self.num_anchors * num_classes, 1, rng=rng),
        )
        self.box_head = nn.Sequential(
            nn.Conv2d(c3, c3, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c3, self.num_anchors * 4, 1, rng=rng),
        )

    def forward(self, x: np.ndarray) -> list[Detection]:
        features = self.backbone(x)
        cls_raw = self.cls_head(features)
        box_raw = self.box_head(features)
        return self._decode(cls_raw, box_raw)

    def _decode(self, cls_raw: np.ndarray, box_raw: np.ndarray) -> list[Detection]:
        batch, _, fh, fw = cls_raw.shape
        anchors = generate_anchor_grid(
            (fh, fw), self.image_size, self.anchor_sizes, self.aspect_ratios
        )
        cls_raw = cls_raw.reshape(batch, self.num_anchors, self.num_classes, fh, fw)
        box_raw = box_raw.reshape(batch, self.num_anchors, 4, fh, fw)
        detections: list[Detection] = []
        for index in range(batch):
            cls_scores = cls_raw[index].transpose(2, 3, 0, 1).reshape(-1, self.num_classes)
            offsets = box_raw[index].transpose(2, 3, 0, 1).reshape(-1, 4) * 0.1
            probs = F.sigmoid(cls_scores)
            labels = np.argmax(probs, axis=1)
            scores = probs[np.arange(len(labels)), labels]
            boxes = decode_offsets(anchors, offsets)
            detections.append(self._select(boxes, scores, labels))
        return detections

    def _select(self, boxes: np.ndarray, scores: np.ndarray, labels: np.ndarray) -> Detection:
        keep_mask = (scores >= self.score_threshold) | ~np.isfinite(scores)
        boxes, scores, labels = boxes[keep_mask], scores[keep_mask], labels[keep_mask]
        if len(scores) == 0:
            return Detection()
        boxes = clip_boxes(boxes, self.image_size)
        finite = np.isfinite(scores) & np.isfinite(boxes).all(axis=1)
        parts = []
        if finite.any():
            keep = nms(boxes[finite], scores[finite], self.nms_threshold)
            parts.append((boxes[finite][keep], scores[finite][keep], labels[finite][keep]))
        if (~finite).any():
            parts.append((boxes[~finite], scores[~finite], labels[~finite]))
        return Detection(
            boxes=np.concatenate([p[0] for p in parts], axis=0),
            scores=np.concatenate([p[1] for p in parts], axis=0),
            labels=np.concatenate([p[2] for p in parts], axis=0).astype(np.int64),
        )


class FasterRCNNLite(Module):
    """Simplified two-stage detector (proposal head + per-proposal classifier)."""

    def __init__(
        self,
        num_classes: int = 5,
        image_size: tuple[int, int] = (64, 64),
        width: float = 0.5,
        seed: int = 0,
        top_proposals: int = 16,
        score_threshold: float = 0.3,
        nms_threshold: float = 0.5,
    ):
        super().__init__()
        rng = init.make_rng(seed)
        c1 = max(8, int(16 * width))
        c2 = c1 * 2
        self.backbone = nn.Sequential(
            nn.Conv2d(3, c1, 3, stride=2, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c1, c2, 3, stride=2, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c2, c2, 3, stride=2, padding=1, rng=rng),
            nn.ReLU(),
        )
        self.anchor_sizes = (12.0, 24.0)
        self.num_anchors = len(self.anchor_sizes)
        self.num_classes = num_classes
        self.image_size = image_size
        self.top_proposals = top_proposals
        self.score_threshold = score_threshold
        self.nms_threshold = nms_threshold
        # Region proposal head: objectness + offsets per anchor.
        self.rpn = nn.Conv2d(c2, self.num_anchors * 5, 1, rng=rng)
        # Second stage: classify pooled proposal features.
        self.roi_pool_size = 2
        roi_features = c2 * self.roi_pool_size * self.roi_pool_size
        self.classifier = nn.Sequential(
            nn.Linear(roi_features, 64, rng=rng),
            nn.ReLU(),
            nn.Linear(64, num_classes + 1, rng=rng),
        )

    def forward(self, x: np.ndarray) -> list[Detection]:
        features = self.backbone(x)
        rpn_raw = self.rpn(features)
        batch, _, fh, fw = rpn_raw.shape
        anchors = generate_anchor_grid((fh, fw), self.image_size, self.anchor_sizes)
        rpn_raw = rpn_raw.reshape(batch, self.num_anchors, 5, fh, fw)
        detections: list[Detection] = []
        for index in range(batch):
            per_image = rpn_raw[index].transpose(2, 3, 0, 1).reshape(-1, 5)
            objectness = F.sigmoid(per_image[:, 0])
            offsets = per_image[:, 1:5] * 0.1
            proposals = decode_offsets(anchors, offsets)
            proposals = clip_boxes(proposals, self.image_size)
            order = np.argsort(-np.nan_to_num(objectness, nan=-1.0))[: self.top_proposals]
            detections.append(
                self._second_stage(features[index], proposals[order], objectness[order])
            )
        return detections

    def _second_stage(
        self,
        feature_map: np.ndarray,
        proposals: np.ndarray,
        objectness: np.ndarray,
    ) -> Detection:
        if len(proposals) == 0:
            return Detection()
        pooled = self._roi_pool(feature_map, proposals)
        logits = self.classifier(pooled)
        probs = F.softmax(logits, axis=1)
        labels = np.argmax(probs[:, 1:], axis=1)  # class 0 is background
        class_scores = probs[np.arange(len(labels)), labels + 1]
        scores = class_scores * objectness
        keep_mask = (scores >= self.score_threshold) | ~np.isfinite(scores)
        boxes, scores, labels = proposals[keep_mask], scores[keep_mask], labels[keep_mask]
        if len(scores) == 0:
            return Detection()
        finite = np.isfinite(scores) & np.isfinite(boxes).all(axis=1)
        parts = []
        if finite.any():
            keep = nms(boxes[finite], scores[finite], self.nms_threshold)
            parts.append((boxes[finite][keep], scores[finite][keep], labels[finite][keep]))
        if (~finite).any():
            parts.append((boxes[~finite], scores[~finite], labels[~finite]))
        return Detection(
            boxes=np.concatenate([p[0] for p in parts], axis=0),
            scores=np.concatenate([p[1] for p in parts], axis=0),
            labels=np.concatenate([p[2] for p in parts], axis=0).astype(np.int64),
        )

    def _roi_pool(self, feature_map: np.ndarray, proposals: np.ndarray) -> np.ndarray:
        """Pool each proposal region to a fixed-size feature vector."""
        channels, fh, fw = feature_map.shape
        height, width = self.image_size
        pooled = np.zeros(
            (len(proposals), channels, self.roi_pool_size, self.roi_pool_size),
            dtype=np.float32,
        )
        safe_proposals = np.nan_to_num(proposals, nan=0.0, posinf=width, neginf=0.0)
        for index, box in enumerate(safe_proposals):
            x1 = int(np.clip(box[0] / width * fw, 0, fw - 1))
            y1 = int(np.clip(box[1] / height * fh, 0, fh - 1))
            x2 = int(np.clip(np.ceil(box[2] / width * fw), x1 + 1, fw))
            y2 = int(np.clip(np.ceil(box[3] / height * fh), y1 + 1, fh))
            region = feature_map[:, y1:y2, x1:x2]
            region_4d = region[None, ...]
            pooled[index] = F.adaptive_avg_pool2d(region_4d, self.roi_pool_size)[0]
        return pooled.reshape(len(proposals), -1)


def yolov3_tiny(num_classes: int = 5, seed: int = 0, **kwargs) -> YoloV3Tiny:
    """Build the YOLO-style detector."""
    return YoloV3Tiny(num_classes=num_classes, seed=seed, **kwargs)


def retinanet_lite(num_classes: int = 5, seed: int = 0, **kwargs) -> RetinaNetLite:
    """Build the RetinaNet-style detector."""
    return RetinaNetLite(num_classes=num_classes, seed=seed, **kwargs)


def faster_rcnn_lite(num_classes: int = 5, seed: int = 0, **kwargs) -> FasterRCNNLite:
    """Build the Faster-RCNN-style two-stage detector."""
    return FasterRCNNLite(num_classes=num_classes, seed=seed, **kwargs)


DETECTOR_REGISTRY: dict[str, Callable[..., Module]] = {
    "yolov3": yolov3_tiny,
    "retinanet": retinanet_lite,
    "faster_rcnn": faster_rcnn_lite,
}


def build_detector(name: str, **kwargs) -> Module:
    """Build a detector by registry name (``yolov3``, ``retinanet``, ``faster_rcnn``)."""
    if name not in DETECTOR_REGISTRY:
        raise KeyError(f"unknown detector {name!r}; available: {sorted(DETECTOR_REGISTRY)}")
    return DETECTOR_REGISTRY[name](**kwargs)
