"""Classification model zoo (AlexNet / VGG / ResNet / LeNet / MLP).

All models accept ``(N, 3, 32, 32)`` images by default (a CIFAR-like
resolution that keeps the pure-numpy convolutions fast) and expose a
``width`` multiplier so campaigns can trade fidelity for speed.  Layer
*structure* follows the original architectures: VGG-16 has its 13 conv +
3 linear layers, ResNet-50 its bottleneck blocks, AlexNet its 5 conv +
3 linear layers — which is what the per-layer and per-bit vulnerability
analyses of the paper exercise.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import nn
from repro.models.compact import elemnet, mobilenet_lite, squeezenet_lite
from repro.nn import init
from repro.nn.module import Module


def _scaled(channels: int, width: float) -> int:
    """Scale a channel count by ``width`` keeping at least 4 channels."""
    return max(4, int(round(channels * width)))


class MLP(Module):
    """Small fully connected network, useful for fast unit tests."""

    def __init__(
        self,
        in_features: int = 3 * 32 * 32,
        hidden: tuple[int, ...] = (128, 64),
        num_classes: int = 10,
        seed: int = 0,
    ):
        super().__init__()
        rng = init.make_rng(seed)
        layers: list[Module] = [nn.Flatten()]
        previous = in_features
        for size in hidden:
            layers.append(nn.Linear(previous, size, rng=rng))
            layers.append(nn.ReLU())
            previous = size
        layers.append(nn.Linear(previous, num_classes, rng=rng))
        self.classifier = nn.Sequential(*layers)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(x)


class LeNet5(Module):
    """LeNet-5 style network: 2 conv layers + 3 linear layers."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = init.make_rng(seed)
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, 6, 5, padding=2, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 16, 5, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(16 * 6 * 6, 120, rng=rng),
            nn.ReLU(),
            nn.Linear(120, 84, rng=rng),
            nn.ReLU(),
            nn.Linear(84, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))


class AlexNet(Module):
    """AlexNet-style network: 5 conv layers + 3 linear layers.

    The torchvision AlexNet geometry is preserved (channel progression
    64-192-384-256-256 scaled by ``width``), adapted to 32x32 inputs.
    """

    def __init__(self, num_classes: int = 10, width: float = 0.25, seed: int = 0):
        super().__init__()
        rng = init.make_rng(seed)
        c1, c2, c3, c4, c5 = (
            _scaled(64, width),
            _scaled(192, width),
            _scaled(384, width),
            _scaled(256, width),
            _scaled(256, width),
        )
        self.features = nn.Sequential(
            nn.Conv2d(3, c1, 3, stride=1, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c2, c3, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c3, c4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c4, c5, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        self.avgpool = nn.AdaptiveAvgPool2d(2)
        hidden = _scaled(4096, width * 0.25)
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Dropout(0.5),
            nn.Linear(c5 * 2 * 2, hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(0.5),
            nn.Linear(hidden, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, num_classes, rng=rng),
        )
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.features(x)
        x = self.avgpool(x)
        return self.classifier(x)


_VGG_CONFIGS: dict[str, list] = {
    # Numbers are conv output channels, "M" is a 2x2 max pool.
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"],
}


class VGG(Module):
    """VGG-style network built from a conv/pool configuration string."""

    def __init__(
        self,
        config: str = "vgg16",
        num_classes: int = 10,
        width: float = 0.125,
        seed: int = 0,
    ):
        super().__init__()
        if config not in _VGG_CONFIGS:
            raise ValueError(f"unknown VGG config {config!r}; choose from {sorted(_VGG_CONFIGS)}")
        rng = init.make_rng(seed)
        layers: list[Module] = []
        in_channels = 3
        for item in _VGG_CONFIGS[config]:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
            else:
                out_channels = _scaled(int(item), width)
                layers.append(nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng))
                layers.append(nn.ReLU())
                in_channels = out_channels
        self.features = nn.Sequential(*layers)
        hidden = _scaled(4096, width * 0.125)
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(in_channels, hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(0.5),
            nn.Linear(hidden, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, num_classes, rng=rng),
        )
        self.config = config
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))


class BasicBlock(Module):
    """ResNet basic block: two 3x3 convs with an identity/projection shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.relu = nn.ReLU()
        self.conv2 = nn.Conv2d(channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class Bottleneck(Module):
    """ResNet bottleneck block (1x1 -> 3x3 -> 1x1) used by ResNet-50."""

    expansion = 4

    def __init__(self, in_channels: int, channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)
        self.conv3 = nn.Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu(out + identity)


class ResNet(Module):
    """ResNet built from a block type and per-stage block counts."""

    def __init__(
        self,
        block: type,
        layers: tuple[int, int, int, int],
        num_classes: int = 10,
        width: float = 0.25,
        seed: int = 0,
    ):
        super().__init__()
        rng = init.make_rng(seed)
        base = _scaled(64, width)
        self.stem = nn.Sequential(
            nn.Conv2d(3, base, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(base),
            nn.ReLU(),
        )
        self.in_channels = base
        self.layer1 = self._make_stage(block, base, layers[0], 1, rng)
        self.layer2 = self._make_stage(block, base * 2, layers[1], 2, rng)
        self.layer3 = self._make_stage(block, base * 4, layers[2], 2, rng)
        self.layer4 = self._make_stage(block, base * 8, layers[3], 2, rng)
        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.fc = nn.Linear(self.in_channels, num_classes, rng=rng)
        self.flatten = nn.Flatten()
        self.num_classes = num_classes

    def _make_stage(
        self,
        block: type,
        channels: int,
        num_blocks: int,
        stride: int,
        rng: np.random.Generator,
    ) -> nn.Sequential:
        blocks = []
        for index in range(num_blocks):
            block_stride = stride if index == 0 else 1
            blocks.append(block(self.in_channels, channels, block_stride, rng))
            self.in_channels = channels * block.expansion
        return nn.Sequential(*blocks)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.avgpool(x)
        x = self.flatten(x)
        return self.fc(x)


# --------------------------------------------------------------------------- #
# factory functions
# --------------------------------------------------------------------------- #
def mlp(num_classes: int = 10, seed: int = 0) -> MLP:
    """Small MLP classifier (fast; used heavily in the test suite)."""
    return MLP(num_classes=num_classes, seed=seed)


def lenet5(num_classes: int = 10, seed: int = 0) -> LeNet5:
    """LeNet-5 style CNN."""
    return LeNet5(num_classes=num_classes, seed=seed)


def alexnet(num_classes: int = 10, width: float = 0.25, seed: int = 0) -> AlexNet:
    """AlexNet-style CNN (5 conv + 3 linear layers)."""
    return AlexNet(num_classes=num_classes, width=width, seed=seed)


def vgg11(num_classes: int = 10, width: float = 0.125, seed: int = 0) -> VGG:
    """VGG-11 style CNN."""
    return VGG("vgg11", num_classes=num_classes, width=width, seed=seed)


def vgg16(num_classes: int = 10, width: float = 0.125, seed: int = 0) -> VGG:
    """VGG-16 style CNN (13 conv + 3 linear layers, as in the paper)."""
    return VGG("vgg16", num_classes=num_classes, width=width, seed=seed)


def resnet18(num_classes: int = 10, width: float = 0.25, seed: int = 0) -> ResNet:
    """ResNet-18 with basic blocks."""
    return ResNet(BasicBlock, (2, 2, 2, 2), num_classes=num_classes, width=width, seed=seed)


def resnet50(num_classes: int = 10, width: float = 0.125, seed: int = 0) -> ResNet:
    """ResNet-50 with bottleneck blocks (as evaluated in the paper)."""
    return ResNet(Bottleneck, (3, 4, 6, 3), num_classes=num_classes, width=width, seed=seed)


# The compact architectures (mobilenet/squeezenet) live in their own module;
# listing them here keeps build_model() the single entry point for every
# classifier family.
MODEL_REGISTRY: dict[str, Callable[..., Module]] = {
    "mlp": mlp,
    "lenet5": lenet5,
    "alexnet": alexnet,
    "vgg11": vgg11,
    "vgg16": vgg16,
    "resnet18": resnet18,
    "resnet50": resnet50,
    "mobilenet": mobilenet_lite,
    "squeezenet": squeezenet_lite,
    "elemnet": elemnet,
}


def build_model(name: str, **kwargs) -> Module:
    """Build a classification model by registry name.

    Args:
        name: one of ``MODEL_REGISTRY`` keys (e.g. ``"vgg16"``).
        **kwargs: forwarded to the model factory (``num_classes``, ``width``,
            ``seed``).

    Raises:
        KeyError: for unknown model names.
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](**kwargs)
