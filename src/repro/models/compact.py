"""Compact CNN architectures (MobileNet- and SqueezeNet-style).

One of the PyTorchALFI use cases is "comparing the robustness of different
types of NN".  Beyond the classic AlexNet/VGG/ResNet families these compact
architectures add two structurally different designs to the zoo:

* :class:`MobileNetLite` — depthwise-separable convolutions (grouped 3x3
  depthwise + 1x1 pointwise), where each weight participates in far fewer
  MACs than in a dense convolution;
* :class:`SqueezeNetLite` — fire modules (1x1 squeeze followed by parallel
  1x1 / 3x3 expands) with no fully connected layers at all (the classifier is
  a 1x1 convolution followed by global average pooling).

Both use the same ``(N, 3, 32, 32)`` input convention as the rest of the zoo
and are valid targets for the fault injector (their conv layers are ordinary
``Conv2d`` modules).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import init
from repro.nn.module import Module


def _scaled(channels: int, width: float) -> int:
    """Scale a channel count by ``width`` keeping at least 4 channels."""
    return max(4, int(round(channels * width)))


class DepthwiseSeparableBlock(Module):
    """Depthwise 3x3 convolution followed by a pointwise 1x1 convolution."""

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        self.depthwise = nn.Conv2d(
            in_channels,
            in_channels,
            3,
            stride=stride,
            padding=1,
            groups=in_channels,
            bias=False,
            rng=rng,
        )
        self.bn1 = nn.BatchNorm2d(in_channels)
        self.relu1 = nn.ReLU()
        self.pointwise = nn.Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu2 = nn.ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.relu1(self.bn1(self.depthwise(x)))
        return self.relu2(self.bn2(self.pointwise(x)))


class MobileNetLite(Module):
    """MobileNet-v1-style classifier built from depthwise-separable blocks."""

    def __init__(self, num_classes: int = 10, width: float = 0.5, seed: int = 0):
        super().__init__()
        rng = init.make_rng(seed)
        c1 = _scaled(32, width)
        stages = [
            (_scaled(64, width), 1),
            (_scaled(128, width), 2),
            (_scaled(128, width), 1),
            (_scaled(256, width), 2),
            (_scaled(256, width), 1),
            (_scaled(512, width), 2),
        ]
        self.stem = nn.Sequential(
            nn.Conv2d(3, c1, 3, stride=1, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(c1),
            nn.ReLU(),
        )
        blocks = []
        in_channels = c1
        for out_channels, stride in stages:
            blocks.append(DepthwiseSeparableBlock(in_channels, out_channels, stride, rng))
            in_channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(in_channels, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.flatten(self.avgpool(x))
        return self.classifier(x)


class FireModule(Module):
    """SqueezeNet fire module: 1x1 squeeze, then parallel 1x1 and 3x3 expands."""

    def __init__(
        self,
        in_channels: int,
        squeeze_channels: int,
        expand_channels: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.squeeze = nn.Conv2d(in_channels, squeeze_channels, 1, rng=rng)
        self.squeeze_relu = nn.ReLU()
        self.expand1x1 = nn.Conv2d(squeeze_channels, expand_channels, 1, rng=rng)
        self.expand3x3 = nn.Conv2d(squeeze_channels, expand_channels, 3, padding=1, rng=rng)
        self.expand_relu = nn.ReLU()
        self.out_channels = expand_channels * 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = self.squeeze_relu(self.squeeze(x))
        expanded = np.concatenate(
            [self.expand1x1(squeezed), self.expand3x3(squeezed)], axis=1
        )
        return self.expand_relu(expanded)


class SqueezeNetLite(Module):
    """SqueezeNet-style classifier: fire modules and a conv classifier head.

    Note that the final :class:`~repro.nn.Linear` layer is a 1x1 convolution
    here, so the architecture has *no* fully connected layers — a structural
    difference that matters for layer-type-restricted fault campaigns.
    """

    def __init__(self, num_classes: int = 10, width: float = 0.5, seed: int = 0):
        super().__init__()
        rng = init.make_rng(seed)
        c1 = _scaled(64, width)
        self.stem = nn.Sequential(
            nn.Conv2d(3, c1, 3, stride=1, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        fire1 = FireModule(c1, _scaled(16, width), _scaled(64, width), rng)
        fire2 = FireModule(fire1.out_channels, _scaled(16, width), _scaled(64, width), rng)
        fire3 = FireModule(fire2.out_channels, _scaled(32, width), _scaled(128, width), rng)
        self.fire1 = fire1
        self.fire2 = fire2
        self.pool = nn.MaxPool2d(2)
        self.fire3 = fire3
        # Classifier head: 1x1 conv to class scores, then global average pooling.
        self.class_conv = nn.Conv2d(fire3.out_channels, num_classes, 1, rng=rng)
        self.class_relu = nn.ReLU()
        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.fire2(self.fire1(x))
        x = self.fire3(self.pool(x))
        x = self.class_relu(self.class_conv(x))
        return self.flatten(self.avgpool(x))


def mobilenet_lite(num_classes: int = 10, width: float = 0.5, seed: int = 0) -> MobileNetLite:
    """MobileNet-style classifier with depthwise-separable convolutions."""
    return MobileNetLite(num_classes=num_classes, width=width, seed=seed)


def squeezenet_lite(num_classes: int = 10, width: float = 0.5, seed: int = 0) -> SqueezeNetLite:
    """SqueezeNet-style classifier with fire modules and a conv classifier."""
    return SqueezeNetLite(num_classes=num_classes, width=width, seed=seed)


class ElemwiseTower(Module):
    """A stack of ``depth`` BatchNorm2d/ReLU pairs at constant width.

    Each pair is two full elementwise passes over the activation tensor, so a
    tower of depth ``d`` issues ``2 * d`` adjacent elementwise segments — the
    exact shape the fused executor collapses into a single in-place chain
    (see :mod:`repro.nn.fuse`).
    """

    def __init__(self, channels: int, depth: int):
        super().__init__()
        layers = []
        for _ in range(depth):
            layers.append(nn.BatchNorm2d(channels))
            layers.append(nn.ReLU())
        self.tower = nn.Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.tower(x)


class ElemNet(Module):
    """Elementwise-heavy classifier used by the fused-executor benchmarks.

    The architecture is deliberately dominated by elementwise work: a cheap
    stem convolution feeds long BatchNorm/ReLU towers, punctuated by 1x1
    mixing convolutions (with bias + activation, the conv+bias+relu fusion
    pattern) and a single Tanh.  On the interpreter executor every one of
    those ops allocates a fresh output array; the fused executor runs each
    tower in place inside one arena slot, so this model bounds the fusion
    speedup from above while remaining a legal fault-injection target (its
    convolutions are ordinary :class:`~repro.nn.Conv2d` modules).
    """

    def __init__(self, num_classes: int = 10, width: float = 1.0, depth: int = 6, seed: int = 0):
        super().__init__()
        rng = init.make_rng(seed)
        c = _scaled(48, width)
        self.stem = nn.Sequential(
            nn.Conv2d(3, c, 3, stride=1, padding=1, rng=rng),
            nn.ReLU(),
        )
        self.tower1 = ElemwiseTower(c, depth)
        self.mix1 = nn.Sequential(nn.Conv2d(c, c, 1, rng=rng), nn.ReLU())
        self.tower2 = ElemwiseTower(c, depth)
        self.squash = nn.Tanh()
        self.pool = nn.MaxPool2d(2)
        self.mix2 = nn.Sequential(nn.Conv2d(c, c, 1, rng=rng), nn.ReLU())
        self.tower3 = ElemwiseTower(c, depth)
        self.avgpool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(c, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.mix1(self.tower1(x))
        x = self.squash(self.tower2(x))
        x = self.mix2(self.pool(x))
        x = self.tower3(x)
        return self.classifier(self.flatten(self.avgpool(x)))


def elemnet(num_classes: int = 10, width: float = 1.0, depth: int = 6, seed: int = 0) -> ElemNet:
    """Elementwise-heavy classifier stressing the fused executor's op chains."""
    return ElemNet(num_classes=num_classes, width=width, depth=depth, seed=seed)
