"""Value-level error models.

The paper supports two kinds of modifications to neurons/weights: drawing a
random value from a specified min-max range, or flipping a bit chosen from a
configured bit range.  Stuck-at faults (permanently forcing a bit to 0 or 1)
are additionally provided because the scenario schema distinguishes transient
from permanent faults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.bitops import BitFlipRecord, flip_bit_scalar, get_bit, set_bit


class ErrorModel:
    """Base class: maps an original scalar value to a corrupted scalar value."""

    name = "base"

    def corrupt(self, value: float, rng: np.random.Generator) -> tuple[float, dict]:
        """Return ``(corrupted_value, info_dict)`` for one original value."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Return a serialisable description of the error model."""
        return {"name": self.name}


@dataclass
class BitFlipErrorModel(ErrorModel):
    """Flip a single bit at a position drawn from ``bit_range`` (inclusive).

    A fixed ``bit_position`` can be passed instead, which is how the fault
    matrix replays a pre-generated fault at the exact same bit.
    """

    bit_range: tuple[int, int] = (0, 31)
    dtype: str = "float32"
    bit_position: int | None = None

    name = "bitflip"

    def __post_init__(self):
        low, high = self.bit_range
        if low > high:
            raise ValueError(f"invalid bit range {self.bit_range}")
        if low < 0:
            raise ValueError("bit range must be non-negative")

    def sample_bit(self, rng: np.random.Generator) -> int:
        """Draw the bit position to flip (or return the fixed one)."""
        if self.bit_position is not None:
            return int(self.bit_position)
        low, high = self.bit_range
        return int(rng.integers(low, high + 1))

    def corrupt(self, value: float, rng: np.random.Generator) -> tuple[float, dict]:
        position = self.sample_bit(rng)
        record: BitFlipRecord = flip_bit_scalar(float(value), position, self.dtype)
        return record.corrupted_value, record.as_dict()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "bit_range": list(self.bit_range),
            "dtype": self.dtype,
            "bit_position": self.bit_position,
        }


@dataclass
class StuckAtErrorModel(ErrorModel):
    """Force a bit to a fixed value (stuck-at-0 / stuck-at-1), a permanent fault."""

    bit_position: int = 30
    stuck_value: int = 1
    dtype: str = "float32"

    name = "stuck_at"

    def __post_init__(self):
        if self.stuck_value not in (0, 1):
            raise ValueError(f"stuck_value must be 0 or 1, got {self.stuck_value}")

    def corrupt(self, value: float, rng: np.random.Generator) -> tuple[float, dict]:
        original_bit = int(get_bit(float(value), self.bit_position, self.dtype))
        corrupted = float(np.asarray(set_bit(float(value), self.bit_position, self.stuck_value, self.dtype)).reshape(()))
        info = {
            "bit_position": self.bit_position,
            "original_value": float(value),
            "corrupted_value": corrupted,
            "flip_direction": f"{original_bit}->{self.stuck_value}",
        }
        return corrupted, info

    def describe(self) -> dict:
        return {
            "name": self.name,
            "bit_position": self.bit_position,
            "stuck_value": self.stuck_value,
            "dtype": self.dtype,
        }


@dataclass
class RandomValueErrorModel(ErrorModel):
    """Replace the value with a random draw from ``[min_value, max_value]``."""

    min_value: float = -1.0
    max_value: float = 1.0

    name = "random_value"

    def __post_init__(self):
        if self.min_value > self.max_value:
            raise ValueError(
                f"min_value ({self.min_value}) must not exceed max_value ({self.max_value})"
            )

    def corrupt(self, value: float, rng: np.random.Generator) -> tuple[float, dict]:
        corrupted = float(rng.uniform(self.min_value, self.max_value))
        info = {
            "original_value": float(value),
            "corrupted_value": corrupted,
            "bit_position": None,
            "flip_direction": None,
        }
        return corrupted, info

    def describe(self) -> dict:
        return {"name": self.name, "min_value": self.min_value, "max_value": self.max_value}


def build_error_model(config: dict) -> ErrorModel:
    """Construct an error model from a scenario-style configuration dict.

    Args:
        config: dictionary with a ``"name"`` key (``"bitflip"``, ``"stuck_at"``
            or ``"random_value"``) and the model-specific fields produced by
            :meth:`ErrorModel.describe`.

    Raises:
        KeyError: for unknown error model names.
    """
    name = config.get("name", "bitflip")
    if name == "bitflip":
        bit_range = tuple(config.get("bit_range", (0, 31)))
        return BitFlipErrorModel(
            bit_range=(int(bit_range[0]), int(bit_range[1])),
            dtype=config.get("dtype", "float32"),
            bit_position=config.get("bit_position"),
        )
    if name == "stuck_at":
        return StuckAtErrorModel(
            bit_position=int(config.get("bit_position", 30)),
            stuck_value=int(config.get("stuck_value", 1)),
            dtype=config.get("dtype", "float32"),
        )
    if name == "random_value":
        return RandomValueErrorModel(
            min_value=float(config.get("min_value", -1.0)),
            max_value=float(config.get("max_value", 1.0)),
        )
    raise KeyError(f"unknown error model {name!r}")
