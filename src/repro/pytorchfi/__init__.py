"""PyTorchFI-compatible core fault injector.

PyTorchALFI uses a branched-off version of PyTorchFI as its injection core.
This subpackage reproduces that core against the :mod:`repro.nn` substrate:

* :class:`~repro.pytorchfi.core.FaultInjection` profiles a model (layer
  types, output shapes, weight shapes), declares neuron or weight faults at
  explicit coordinates and produces corrupted model instances.  Neuron
  faults are applied through forward hooks (values are only known at run
  time); weight faults are applied by patching the corresponding parameter
  before inference.
* :mod:`~repro.pytorchfi.errormodels` contains the value-level error models:
  single/multi bit flips, stuck-at faults and bounded random value
  replacement.
"""

from repro.pytorchfi.core import (
    FaultInjection,
    LayerInfo,
    NeuronFaultGroup,
    NeuronInjectionSession,
    WeightPatchSession,
    injectable_layer_types,
    verify_layer,
)
from repro.pytorchfi.errormodels import (
    BitFlipErrorModel,
    ErrorModel,
    RandomValueErrorModel,
    StuckAtErrorModel,
    build_error_model,
)

__all__ = [
    "BitFlipErrorModel",
    "ErrorModel",
    "FaultInjection",
    "LayerInfo",
    "NeuronFaultGroup",
    "NeuronInjectionSession",
    "RandomValueErrorModel",
    "StuckAtErrorModel",
    "WeightPatchSession",
    "build_error_model",
    "injectable_layer_types",
    "verify_layer",
]
