"""Fault injection core (PyTorchFI stand-in).

The core knows how to

1. *profile* a model: enumerate the injectable layers (conv2d, conv3d and
   fully connected by default), record their weight shapes and — by running a
   dummy forward pass — their output activation shapes;
2. *inject neuron faults*: attach forward hooks that corrupt selected output
   values in place during inference;
3. *inject weight faults*: patch selected weight elements of the model before
   inference.

Faults are described by explicit coordinates matching Table I of the paper
(batch, layer, channel, depth, height, width, value).  The *value* row is
interpreted by the configured error model, either as a literal replacement
value or as the bit position to flip.

Two execution strategies are offered per injection target:

* the legacy ``declare_*_fault_injection`` methods return a *corrupted clone*
  of the model (the original is never modified) — simple, but a full deep
  copy per fault group;
* the clone-free *sessions* (:class:`WeightPatchSession`,
  :class:`NeuronInjectionSession`) patch the original model in place and
  restore the exact original bit patterns on exit, or keep one reusable
  hooked clone whose active fault group is swapped per step.  These are what
  the large-scale campaign engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro import nn
from repro.nn.module import Module, RemovableHandle
from repro.pytorchfi.errormodels import BitFlipErrorModel, ErrorModel, StuckAtErrorModel

# Registry of injectable layer types.  The paper's extensibility section
# describes adding custom trainable layers via the ``verify_layer`` function;
# registering a new entry here achieves the same.
_INJECTABLE_LAYER_TYPES: dict[str, type] = {
    "conv2d": nn.Conv2d,
    "conv3d": nn.Conv3d,
    "fcc": nn.Linear,
}

# Sentinel for unused coordinate dimensions (e.g. depth for conv2d outputs).
UNSET = -1


def injectable_layer_types() -> dict[str, type]:
    """Return a copy of the registry of injectable layer type names."""
    return dict(_INJECTABLE_LAYER_TYPES)


def register_layer_type(name: str, layer_class: type) -> None:
    """Register a custom layer class as a valid fault injection target."""
    if not isinstance(layer_class, type) or not issubclass(layer_class, Module):
        raise TypeError("layer_class must be a Module subclass")
    _INJECTABLE_LAYER_TYPES[name] = layer_class


def verify_layer(module: Module, layer_types: Sequence[str]) -> str | None:
    """Return the registered type name of ``module`` if it is injectable.

    Args:
        module: candidate module.
        layer_types: names of allowed layer types (e.g. ``["conv2d", "fcc"]``).

    Returns:
        The matching type name, or ``None`` if the module is not injectable
        under the requested types.
    """
    for name in layer_types:
        if name not in _INJECTABLE_LAYER_TYPES:
            raise KeyError(
                f"unknown layer type {name!r}; registered: {sorted(_INJECTABLE_LAYER_TYPES)}"
            )
        if isinstance(module, _INJECTABLE_LAYER_TYPES[name]):
            return name
    return None


@dataclass
class LayerInfo:
    """Description of one injectable layer discovered during profiling."""

    index: int
    name: str
    layer_type: str
    weight_shape: tuple[int, ...]
    output_shape: tuple[int, ...] | None = None

    @property
    def num_weights(self) -> int:
        """Number of scalar weights in the layer."""
        return int(np.prod(self.weight_shape)) if self.weight_shape else 0

    @property
    def num_neurons(self) -> int:
        """Number of output activations per input sample (0 if unknown)."""
        if not self.output_shape or len(self.output_shape) < 2:
            return 0
        return int(np.prod(self.output_shape[1:]))


@dataclass
class NeuronFault:
    """A single neuron fault location (Table I convention).

    ``value`` is interpreted by the error model: for bit-flip models it is the
    bit position, for value models it is the replacement value.
    """

    batch: int
    layer: int
    channel: int
    depth: int
    height: int
    width: int
    value: float

    def coordinates(self) -> tuple[int, int, int, int, int, int]:
        """Return the location rows (without the value) as a tuple."""
        return (self.batch, self.layer, self.channel, self.depth, self.height, self.width)


@dataclass
class WeightFault:
    """A single weight fault location.

    For conv weights the rows address ``(out_channel, in_channel, [depth,]
    height, width)`` of the kernel; for fully connected weights ``out_channel``
    and ``in_channel`` address the 2D weight matrix and the remaining rows are
    unused (:data:`UNSET`).
    """

    layer: int
    out_channel: int
    in_channel: int
    depth: int
    height: int
    width: int
    value: float

    def coordinates(self) -> tuple[int, int, int, int, int, int]:
        """Return the location rows (without the value) as a tuple."""
        return (self.layer, self.out_channel, self.in_channel, self.depth, self.height, self.width)


@dataclass
class AppliedFault:
    """Bookkeeping of one applied corruption (written to the result files)."""

    target: str  # "neuron" or "weight"
    layer: int
    layer_name: str
    coordinates: tuple[int, ...]
    bit_position: int | None
    original_value: float
    corrupted_value: float
    flip_direction: str | None

    def as_dict(self) -> dict:
        """Return a CSV/JSON-friendly representation."""
        return {
            "target": self.target,
            "layer": self.layer,
            "layer_name": self.layer_name,
            "coordinates": list(self.coordinates),
            "bit_position": self.bit_position,
            "original_value": self.original_value,
            "corrupted_value": self.corrupted_value,
            "flip_direction": self.flip_direction,
        }


class FaultInjection:
    """Profile a model and produce fault-corrupted copies of it.

    Args:
        model: the fault-free baseline model (never modified).
        batch_size: batch size used for profiling and neuron coordinate checks.
        input_shape: per-sample input shape, e.g. ``(3, 32, 32)``.
        layer_types: names of layer types eligible for injection.
        use_hooks_for_profiling: if False, skip the forward profiling pass
            (output shapes stay unknown; only weight injection is possible).
    """

    def __init__(
        self,
        model: Module,
        batch_size: int = 1,
        input_shape: tuple[int, ...] = (3, 32, 32),
        layer_types: Sequence[str] = ("conv2d", "conv3d", "fcc"),
        use_hooks_for_profiling: bool = True,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.original_model = model
        self.batch_size = batch_size
        self.input_shape = tuple(input_shape)
        self.layer_types = tuple(layer_types)
        self.layers: list[LayerInfo] = []
        self._layer_modules: list[str] = []  # qualified module names per layer index
        self._applied_fault_groups: list[list[AppliedFault]] = []
        self._profile(use_hooks_for_profiling)

    # ------------------------------------------------------------------ #
    # profiling
    # ------------------------------------------------------------------ #
    def _profile(self, run_forward: bool) -> None:
        """Enumerate injectable layers and record weight/output shapes."""
        self.layers = []
        self._layer_modules = []
        for name, module in self.original_model.named_modules():
            type_name = verify_layer(module, self.layer_types)
            if type_name is None:
                continue
            weight_shape = tuple(module.weight.shape) if hasattr(module, "weight") else ()
            self.layers.append(
                LayerInfo(
                    index=len(self.layers),
                    name=name,
                    layer_type=type_name,
                    weight_shape=weight_shape,
                )
            )
            self._layer_modules.append(name)
        if not self.layers:
            raise ValueError(
                "model contains no injectable layers for the requested types "
                f"{list(self.layer_types)}"
            )
        if run_forward:
            self._record_output_shapes()

    def _record_output_shapes(self) -> None:
        """Run a dummy forward pass to capture each layer's output shape.

        The probe hooks are attached to the original model and removed again
        afterwards; shape recording never mutates weights, so no clone is
        needed.  Pre-existing user hooks (monitors, loggers) are suspended
        for the duration of the probe forward so profiling stays free of
        observable side effects, exactly as the cloned probe used to be.
        """
        was_training = self.original_model.training
        self.original_model.eval()
        stashed = []
        for module in self.original_model.modules():
            stashed.append((module, module._forward_hooks, module._forward_pre_hooks))
            module._forward_hooks = type(module._forward_hooks)()
            module._forward_pre_hooks = type(module._forward_pre_hooks)()
        shapes: dict[str, tuple[int, ...]] = {}

        def make_hook(layer_name: str):
            def hook(module, inputs, output):
                shapes[layer_name] = tuple(np.asarray(output).shape)
                return None

            return hook

        for info in self.layers:
            module = self.original_model.get_submodule(info.name)
            module.register_forward_hook(make_hook(info.name))
        dummy = np.zeros((self.batch_size, *self.input_shape), dtype=np.float32)
        try:
            self.original_model(dummy)
        finally:
            for module, hooks, pre_hooks in stashed:
                module._forward_hooks = hooks
                module._forward_pre_hooks = pre_hooks
            self.original_model.train(was_training)
        for info in self.layers:
            info.output_shape = shapes.get(info.name)

    # ------------------------------------------------------------------ #
    # introspection helpers
    # ------------------------------------------------------------------ #
    def get_layer_info(self, layer_index: int) -> LayerInfo:
        """Return the :class:`LayerInfo` for ``layer_index``."""
        if not 0 <= layer_index < len(self.layers):
            raise IndexError(
                f"layer index {layer_index} out of range (model has {len(self.layers)} "
                "injectable layers)"
            )
        return self.layers[layer_index]

    @property
    def num_layers(self) -> int:
        """Number of injectable layers found in the model."""
        return len(self.layers)

    def layer_weight_counts(self) -> list[int]:
        """Number of weights per injectable layer."""
        return [info.num_weights for info in self.layers]

    def layer_neuron_counts(self) -> list[int]:
        """Number of neurons (per sample) per injectable layer."""
        return [info.num_neurons for info in self.layers]

    # ------------------------------------------------------------------ #
    # neuron fault injection
    # ------------------------------------------------------------------ #
    def declare_neuron_fault_injection(
        self,
        faults: Iterable[NeuronFault],
        error_model: ErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> Module:
        """Return a copy of the model with neuron-corrupting hooks attached.

        Args:
            faults: the neuron fault locations to apply.
            error_model: how the value row is interpreted.  Defaults to a
                bit-flip model where ``fault.value`` is the bit position.
            rng: random generator used by stochastic error models.

        Returns:
            A corrupted model instance; running inference with it applies the
            faults and appends :class:`AppliedFault` records to
            :attr:`applied_faults`.
        """
        faults = list(faults)
        for fault in faults:
            self._validate_neuron_fault(fault)
        error_model = error_model if error_model is not None else BitFlipErrorModel()
        rng = rng if rng is not None else np.random.default_rng(0)
        corrupted = self.original_model.clone()
        corrupted.eval()
        log = self._new_group_log()

        by_layer: dict[int, list[NeuronFault]] = {}
        for fault in faults:
            by_layer.setdefault(fault.layer, []).append(fault)

        for layer_index, layer_faults in by_layer.items():
            info = self.layers[layer_index]
            module = corrupted.get_submodule(info.name)
            module.register_forward_hook(
                self._make_neuron_hook(info, layer_faults, error_model, rng, log)
            )
        return corrupted

    def _make_neuron_hook(
        self,
        info: LayerInfo,
        faults: list[NeuronFault],
        error_model: ErrorModel,
        rng: np.random.Generator,
        log: list[AppliedFault],
    ):
        def hook(module, inputs, output):
            output = np.asarray(output)
            for fault in faults:
                self._corrupt_neuron_at(output, info, fault, error_model, rng, log)
            return output

        return hook

    def _corrupt_neuron_at(
        self,
        output: np.ndarray,
        info: LayerInfo,
        fault: NeuronFault,
        error_model: ErrorModel,
        rng: np.random.Generator,
        log: list[AppliedFault],
    ) -> None:
        """Corrupt one neuron of ``output`` in place and record it in ``log``."""
        index = self._neuron_index(output.shape, fault)
        if index is None:
            return
        original = float(output[index])
        corrupted_value, details = self._corrupt_value(original, fault.value, error_model, rng)
        output[index] = corrupted_value
        log.append(
            AppliedFault(
                target="neuron",
                layer=info.index,
                layer_name=info.name,
                coordinates=fault.coordinates(),
                bit_position=details.get("bit_position"),
                original_value=original,
                corrupted_value=corrupted_value,
                flip_direction=details.get("flip_direction"),
            )
        )

    def _neuron_index(self, output_shape: tuple[int, ...], fault: NeuronFault) -> tuple | None:
        """Map Table-I coordinates onto an index into the layer output tensor.

        Returns ``None`` when the fault's batch index exceeds the actual batch
        size of the current inference (e.g. a smaller final batch).
        """
        ndim = len(output_shape)
        if fault.batch >= output_shape[0]:
            return None
        if ndim == 2:  # (N, features) -- fully connected
            return (fault.batch, fault.channel % output_shape[1])
        if ndim == 4:  # (N, C, H, W) -- conv2d
            return (
                fault.batch,
                fault.channel % output_shape[1],
                fault.height % output_shape[2],
                fault.width % output_shape[3],
            )
        if ndim == 5:  # (N, C, D, H, W) -- conv3d
            return (
                fault.batch,
                fault.channel % output_shape[1],
                fault.depth % output_shape[2],
                fault.height % output_shape[3],
                fault.width % output_shape[4],
            )
        raise ValueError(f"unsupported output tensor rank {ndim} for neuron injection")

    def _validate_neuron_fault(self, fault: NeuronFault) -> None:
        if not 0 <= fault.layer < len(self.layers):
            raise IndexError(f"neuron fault addresses unknown layer {fault.layer}")
        if fault.batch < 0 or fault.batch >= self.batch_size:
            raise IndexError(
                f"neuron fault batch index {fault.batch} outside batch size {self.batch_size}"
            )
        info = self.layers[fault.layer]
        if info.output_shape is None:
            raise RuntimeError(
                f"layer {info.name} has no recorded output shape; profiling forward pass "
                "is required for neuron injection"
            )

    # ------------------------------------------------------------------ #
    # weight fault injection
    # ------------------------------------------------------------------ #
    def declare_weight_fault_injection(
        self,
        faults: Iterable[WeightFault],
        error_model: ErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> Module:
        """Return a copy of the model with corrupted weight values.

        The corruption is applied immediately (weights are known before the
        inference run, so no hooks are needed, as the paper points out).
        """
        faults = list(faults)
        error_model = error_model if error_model is not None else BitFlipErrorModel()
        rng = rng if rng is not None else np.random.default_rng(0)
        corrupted = self.original_model.clone()
        corrupted.eval()
        log = self._new_group_log()
        for fault in faults:
            info, weight, index = self._locate_weight(corrupted, fault)
            self._corrupt_weight_at(info, weight, index, fault, error_model, rng, log)
        return corrupted

    def weight_patch_session(
        self,
        faults: Iterable[WeightFault],
        error_model: ErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "WeightPatchSession":
        """Return a clone-free patch session for one weight fault group.

        Entering the session applies the corruptions *in place* on the
        original model; leaving it restores the exact original bit patterns.
        Unlike :meth:`declare_weight_fault_injection` no model copy is made
        and nothing is appended to the shared :attr:`applied_faults` log —
        the per-group records live on the session object.
        """
        faults = list(faults)
        for fault in faults:
            if not 0 <= fault.layer < len(self.layers):
                raise IndexError(f"weight fault addresses unknown layer {fault.layer}")
        return WeightPatchSession(self, faults, error_model, rng)

    def neuron_injection_session(
        self,
        error_model: ErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> "NeuronInjectionSession":
        """Return a reusable hooked model for clone-free neuron injection.

        The model is cloned and hooked exactly once; the active fault group is
        swapped per inference step via :meth:`NeuronInjectionSession.activate`
        instead of re-cloning and re-hooking for every group.
        """
        return NeuronInjectionSession(self, error_model, rng)

    def _locate_weight(
        self, model: Module, fault: WeightFault
    ) -> tuple[LayerInfo, np.ndarray, tuple]:
        """Resolve a weight fault to ``(layer_info, weight_array, index)``."""
        if not 0 <= fault.layer < len(self.layers):
            raise IndexError(f"weight fault addresses unknown layer {fault.layer}")
        info = self.layers[fault.layer]
        module = model.get_submodule(info.name)
        weight = module.weight.data
        return info, weight, self._weight_index(weight.shape, fault)

    def _corrupt_weight_at(
        self,
        info: LayerInfo,
        weight: np.ndarray,
        index: tuple,
        fault: WeightFault,
        error_model: ErrorModel,
        rng: np.random.Generator,
        log: list[AppliedFault],
    ) -> None:
        """Corrupt one weight element in place and record it in ``log``."""
        original = float(weight[index])
        corrupted_value, details = self._corrupt_value(original, fault.value, error_model, rng)
        weight[index] = corrupted_value
        log.append(
            AppliedFault(
                target="weight",
                layer=info.index,
                layer_name=info.name,
                coordinates=fault.coordinates(),
                bit_position=details.get("bit_position"),
                original_value=original,
                corrupted_value=corrupted_value,
                flip_direction=details.get("flip_direction"),
            )
        )

    def _weight_index(self, weight_shape: tuple[int, ...], fault: WeightFault) -> tuple:
        """Map weight fault coordinates onto an index into the weight tensor."""
        ndim = len(weight_shape)
        if ndim == 2:  # Linear: (out_features, in_features)
            return (fault.out_channel % weight_shape[0], fault.in_channel % weight_shape[1])
        if ndim == 4:  # Conv2d: (out, in, kh, kw)
            return (
                fault.out_channel % weight_shape[0],
                fault.in_channel % weight_shape[1],
                fault.height % weight_shape[2],
                fault.width % weight_shape[3],
            )
        if ndim == 5:  # Conv3d: (out, in, kd, kh, kw)
            return (
                fault.out_channel % weight_shape[0],
                fault.in_channel % weight_shape[1],
                fault.depth % weight_shape[2],
                fault.height % weight_shape[3],
                fault.width % weight_shape[4],
            )
        raise ValueError(f"unsupported weight tensor rank {ndim} for weight injection")

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _corrupt_value(
        original: float,
        fault_value: float,
        error_model: ErrorModel,
        rng: np.random.Generator,
    ) -> tuple[float, dict]:
        """Apply the error model, honouring the fault's pre-drawn value row."""
        if isinstance(error_model, BitFlipErrorModel):
            # The fault matrix already drew the bit position: replay it exactly.
            pinned = replace(error_model, bit_position=int(fault_value))
            return pinned.corrupt(original, rng)
        if isinstance(error_model, StuckAtErrorModel):
            # Permanent faults are also located at the pre-drawn bit position.
            pinned = replace(error_model, bit_position=int(fault_value))
            return pinned.corrupt(original, rng)
        if error_model.name == "random_value":
            # The fault matrix already drew the replacement value.
            corrupted = float(fault_value)
            return corrupted, {
                "original_value": original,
                "corrupted_value": corrupted,
                "bit_position": None,
                "flip_direction": None,
            }
        return error_model.corrupt(original, rng)

    # ------------------------------------------------------------------ #
    # applied-fault bookkeeping
    # ------------------------------------------------------------------ #
    def _new_group_log(self) -> list[AppliedFault]:
        """Open a fresh per-group log on the shared history and return it."""
        log: list[AppliedFault] = []
        self._applied_fault_groups.append(log)
        return log

    @property
    def applied_faults(self) -> list[AppliedFault]:
        """Flat log of every corruption applied via the ``declare_*`` methods.

        The log is grouped internally (one sub-list per ``declare_*`` call,
        see :meth:`applied_fault_groups`); this property flattens it for
        backwards compatibility.  Clone-free sessions keep their records on
        the session object instead, so large campaigns no longer grow this
        shared log without bound.
        """
        return [fault for group in self._applied_fault_groups for fault in group]

    @applied_faults.setter
    def applied_faults(self, value: Iterable[AppliedFault]) -> None:
        value = list(value)
        self._applied_fault_groups = [value] if value else []

    def applied_fault_groups(self) -> list[list[AppliedFault]]:
        """Per-fault-group view of the applied log (one list per declare call)."""
        return [list(group) for group in self._applied_fault_groups]

    def reset(self) -> None:
        """Clear the applied-fault log (e.g. between experiment repetitions)."""
        self._applied_fault_groups = []


class WeightPatchSession:
    """Apply one weight fault group in place and restore it bit-exactly.

    The campaign engine's clone-free replacement for
    :meth:`FaultInjection.declare_weight_fault_injection`: instead of deep
    copying the model per fault group, the original weights are patched in
    place on ``__enter__`` and the exact original bit patterns are written
    back on ``__exit__`` (the saved values are numpy scalars of the weight's
    own dtype, so the restore is bit-exact even for NaN/Inf corruptions).

    Usage::

        with fi.weight_patch_session(faults) as session:
            corrupted_output = session.model(batch)
        # session.model (the original model) is bit-exactly restored here
        records = session.applied_faults

    Attributes:
        model: the patched model — the *original* model instance.
        applied_faults: per-group :class:`AppliedFault` records (populated on
            enter; weights are static, so no inference is needed).
    """

    def __init__(
        self,
        fi: FaultInjection,
        faults: list[WeightFault],
        error_model: ErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._fi = fi
        self._faults = list(faults)
        self._error_model = error_model if error_model is not None else BitFlipErrorModel()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.model = fi.original_model
        self.applied_faults: list[AppliedFault] = []
        self._saved: list[tuple[np.ndarray, tuple, np.generic]] = []
        # Corruptions computed on first enter, replayed verbatim afterwards so
        # re-entering the session (e.g. per-epoch campaigns running the same
        # group for every batch) applies identical values even for stochastic
        # error models.
        self._replay: list[tuple[np.ndarray, tuple, np.generic]] | None = None

    @property
    def active(self) -> bool:
        """True while the faults are patched into the model."""
        return bool(self._saved)

    @property
    def first_faulted_layer(self) -> int | None:
        """Lowest injectable-layer index this group corrupts (None if empty).

        Layer indices follow registration (profiling) order, which is not
        necessarily execution order — suffix-only campaign forwards therefore
        resume from the earliest *executed* segment over :attr:`faulted_layers`.
        """
        return min((fault.layer for fault in self._faults), default=None)

    @property
    def faulted_layers(self) -> list[int]:
        """Sorted injectable-layer indices this group corrupts."""
        return sorted({fault.layer for fault in self._faults})

    def __enter__(self) -> "WeightPatchSession":
        if self._saved:
            raise RuntimeError("weight patch session is already active")
        try:
            if self._replay is not None:
                for weight, index, corrupted_value in self._replay:
                    self._saved.append((weight, index, weight[index]))
                    weight[index] = corrupted_value
                return self
            self.applied_faults = []
            replay: list[tuple[np.ndarray, tuple, np.generic]] = []
            for fault in self._faults:
                info, weight, index = self._fi._locate_weight(self.model, fault)
                # ``weight[index]`` yields a numpy scalar of the array's dtype:
                # restoring it by assignment reproduces the original bit pattern.
                self._saved.append((weight, index, weight[index]))
                self._fi._corrupt_weight_at(
                    info, weight, index, fault, self._error_model, self._rng, self.applied_faults
                )
                replay.append((weight, index, weight[index]))
            self._replay = replay
            return self
        except BaseException:
            # __exit__ never runs when __enter__ raises: undo the partial
            # patch here so the bit-exact-restore guarantee still holds.
            self.restore()
            raise

    def __exit__(self, exc_type, exc, tb) -> None:
        self.restore()

    def restore(self) -> None:
        """Write the saved original bit patterns back (reverse order)."""
        while self._saved:
            weight, index, original = self._saved.pop()
            weight[index] = original


class NeuronInjectionSession:
    """A reusable hooked model for clone-free neuron fault injection.

    The model is cloned and hooked exactly *once*; afterwards the active
    fault group is swapped per inference step via :meth:`activate` instead of
    re-cloning and re-hooking for every group (the per-step cost drops from a
    full model deep copy to a dictionary update).

    Usage::

        session = fi.neuron_injection_session()
        for faults in fault_groups:
            with session.activate(faults) as group:
                corrupted_output = group.model(batch)
            records = group.applied_faults
        session.close()

    The session itself is also a context manager (``close`` on exit).
    """

    def __init__(
        self,
        fi: FaultInjection,
        error_model: ErrorModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._fi = fi
        self._error_model = error_model if error_model is not None else BitFlipErrorModel()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Active-group rng; swapped by NeuronFaultGroup when a group carries
        # its own (per-group-derived) stream.
        self._active_rng = self._rng
        self.model = fi.original_model.clone()
        self.model.eval()
        self._active: dict[int, list[NeuronFault]] = {}
        self._log: list[AppliedFault] = []
        self._handles: list[RemovableHandle] = []
        for info in fi.layers:
            module = self.model.get_submodule(info.name)
            self._handles.append(module.register_forward_hook(self._make_hook(info)))

    def _make_hook(self, info: LayerInfo):
        def hook(module, inputs, output):
            faults = self._active.get(info.index)
            if not faults:
                return None
            output = np.asarray(output)
            for fault in faults:
                self._fi._corrupt_neuron_at(
                    output, info, fault, self._error_model, self._active_rng, self._log
                )
            return output

        return hook

    def set_faults(self, faults: Iterable[NeuronFault]) -> Module:
        """Make ``faults`` the active group and return the hooked model."""
        faults = list(faults)
        active: dict[int, list[NeuronFault]] = {}
        for fault in faults:
            self._fi._validate_neuron_fault(fault)
            active.setdefault(fault.layer, []).append(fault)
        self._active = active
        return self.model

    def clear_faults(self) -> None:
        """Deactivate the current fault group (the model runs fault-free)."""
        self._active = {}

    def collect_applied(self) -> list[AppliedFault]:
        """Return and clear the records accumulated since the last collect."""
        log, self._log = self._log, []
        return log

    def activate(
        self,
        faults: Iterable[NeuronFault],
        rng: np.random.Generator | None = None,
    ) -> "NeuronFaultGroup":
        """Return a context manager scoping one fault group on this session.

        Args:
            faults: the group's neuron faults.
            rng: optional group-specific rng used while the group is active
                (the session's own rng otherwise).
        """
        return NeuronFaultGroup(self, list(faults), rng=rng)

    def close(self) -> None:
        """Remove the injection hooks (the session becomes inert)."""
        for handle in self._handles:
            handle.remove()
        self._handles = []
        self._active = {}

    def __enter__(self) -> "NeuronInjectionSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NeuronFaultGroup:
    """One fault group activated on a shared :class:`NeuronInjectionSession`.

    Mirrors the :class:`WeightPatchSession` protocol (``model`` /
    ``applied_faults`` / context manager) so campaign loops can treat both
    injection targets uniformly.
    """

    def __init__(
        self,
        session: NeuronInjectionSession,
        faults: list[NeuronFault],
        rng: np.random.Generator | None = None,
    ):
        self._session = session
        self._faults = faults
        self._rng = rng
        self.applied_faults: list[AppliedFault] = []

    @property
    def model(self) -> Module:
        """The session's reusable hooked model."""
        return self._session.model

    @property
    def first_faulted_layer(self) -> int | None:
        """Lowest injectable-layer index this group corrupts (None if empty).

        Layer indices follow registration (profiling) order; campaign
        forwards resume from the earliest executed segment over
        :attr:`faulted_layers` so every injection hook still fires.
        """
        return min((fault.layer for fault in self._faults), default=None)

    @property
    def faulted_layers(self) -> list[int]:
        """Sorted injectable-layer indices this group corrupts."""
        return sorted({fault.layer for fault in self._faults})

    def __enter__(self) -> "NeuronFaultGroup":
        self._session.set_faults(self._faults)
        self._session._active_rng = self._rng if self._rng is not None else self._session._rng
        # Bind the session log to this group so hook records land here.
        self.applied_faults = self._session._log = []
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._session.clear_faults()
