"""Command-line interface for fault injection campaigns.

Exposes the declarative Experiment API as a console script (``pytorchalfi``):

* ``pytorchalfi run <spec.yml>`` — run a campaign described by an experiment
  specification file (YAML or JSON); the one entry point every workload
  shares.
* ``pytorchalfi sweep <spec.yml>`` — expand the spec's ``sweep:`` grid and
  run every point through the content-addressed campaign store; completed
  points are skipped, ``--resume`` continues an interrupted sweep, and
  ``--dry-run`` lists the points with their run IDs without executing.
* ``pytorchalfi validate <spec.yml ...>`` — load and validate spec files
  against the component registries (typos get did-you-mean suggestions).
* ``pytorchalfi run-imgclass`` / ``pytorchalfi run-objdet`` — flag-driven
  spec *builders* for the two built-in workloads; ``--save-spec`` writes the
  equivalent spec file for later ``run`` invocations.
* ``pytorchalfi analyze`` — post-process a stored campaign directory
  (bit-wise / layer-wise vulnerability breakdown).
* ``pytorchalfi lint`` — run the repro-lint determinism/bit-exactness
  static analysis (same engine as ``python -m repro.lint``).

All ``choices`` lists are derived from the central registries
(``sorted(registry)``), so registering a new model/protection/value type
automatically extends the CLI help text.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.alficore import default_scenario, load_scenario
from repro.alficore.analysis import analyze_classification_campaign, analyze_detection_campaign
from repro.alficore.scenario import INJECTION_POLICIES, INJECTION_TARGETS
from repro.experiments import (
    BackendSpec,
    CachingSpec,
    CampaignStore,
    ComponentSpec,
    ERROR_MODELS,
    ExecutionSpec,
    ExperimentSpec,
    MODELS,
    PROTECTIONS,
    SpecError,
    TASKS,
    run,
)
from repro.nn.ir import executor_names
from repro.visualization import comparison_table, sde_per_bit_chart, sde_per_layer_chart


def _optional_path(value: str) -> Path | None:
    """``--fault-file ""`` (e.g. an unset shell variable) means "not given"."""
    return Path(value) if value else None


def _add_common_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--images", type=int, default=40, help="number of dataset images")
    parser.add_argument("--num-faults", type=int, default=1, help="faults per image")
    parser.add_argument("--num-runs", type=int, default=1, help="epochs over the dataset")
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="images per batch (per_batch/per_epoch policies; per_image always uses 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sharded campaign execution (1 = serial)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failed campaign shard before giving up",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock deadline; a hung shard is killed and retried "
        "(workers > 1 only)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from its run manifest, "
        "re-running only the shards not yet completed",
    )
    parser.add_argument(
        "--no-prefix-reuse", action="store_true",
        help="escape hatch: run the faulty lane as a full forward instead of a "
        "suffix-only forward from the first faulted layer",
    )
    parser.add_argument(
        "--executor", choices=executor_names(), default="interpreter",
        help="forward-plan execution backend; 'fused' collapses elementwise/conv+act "
        "runs into single kernels with planned buffer reuse (always validated "
        "bit-exactly against the module path at trace time)",
    )
    parser.add_argument(
        "--golden-cache", type=int, default=256, metavar="MB",
        help="in-memory budget (MB) of the epoch-invariant golden cache; 0 disables it",
    )
    parser.add_argument(
        "--target", choices=INJECTION_TARGETS, default="weights", help="fault injection target"
    )
    parser.add_argument(
        "--value-type", choices=sorted(ERROR_MODELS), default="bitflip",
        help="how the targeted value is corrupted",
    )
    parser.add_argument(
        "--bit-range", type=int, nargs=2, default=(23, 30), metavar=("LOW", "HIGH"),
        help="inclusive bit range for bit flips",
    )
    parser.add_argument(
        "--inj-policy", choices=INJECTION_POLICIES, default="per_image",
        help="how long one fault set stays active",
    )
    parser.add_argument("--seed", type=int, default=1234, help="campaign random seed")
    parser.add_argument("--scenario", type=Path, default=None, help="optional scenario yml file")
    parser.add_argument(
        "--fault-file", type=_optional_path, default=None, help="reuse a stored fault matrix"
    )
    parser.add_argument("--output-dir", type=Path, default=Path("campaign_output"))
    parser.add_argument(
        "--save-spec", type=Path, default=None, metavar="SPEC",
        help="also write the equivalent experiment spec file (YAML/JSON by suffix)",
    )


def _scenario_from_args(args: argparse.Namespace):
    if args.scenario is not None:
        scenario = load_scenario(args.scenario)
    else:
        scenario = default_scenario()
    overrides = {
        "injection_target": args.target,
        "rnd_value_type": args.value_type,
        "rnd_bit_range": tuple(args.bit_range),
        "random_seed": args.seed,
        "dataset_size": args.images,
        "max_faults_per_image": args.num_faults,
        "inj_policy": args.inj_policy,
        "num_runs": args.num_runs,
        "model_name": args.model,
    }
    if args.fault_file is not None:
        # Only an explicit --fault-file overrides; a fault_file declared in
        # the --scenario yml keeps replaying its stored matrix.
        overrides["fault_file"] = args.fault_file
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    return scenario.copy(**overrides)


def _spec_from_args(args: argparse.Namespace, task: str, dataset: ComponentSpec) -> ExperimentSpec:
    """Assemble the experiment spec a ``run-imgclass``/``run-objdet`` call describes."""
    protection = getattr(args, "protection", "none")
    return ExperimentSpec(
        name=args.model,
        task=task,
        model=ComponentSpec(
            args.model, {"num_classes": args.num_classes, "seed": args.model_seed}
        ),
        dataset=dataset,
        scenario=_scenario_from_args(args),
        protection=ComponentSpec(protection) if protection != "none" else None,
        backend=BackendSpec(
            # --resume needs the sharded backend (the run manifest tracks
            # shard ranges); with workers=1 it runs the shards in-process.
            name="sharded" if (args.workers > 1 or args.resume) else "serial",
            workers=args.workers,
        ),
        caching=CachingSpec(
            golden_cache_mb=args.golden_cache, prefix_reuse=not args.no_prefix_reuse
        ),
        execution=ExecutionSpec(
            retries=args.retries,
            shard_timeout=args.shard_timeout,
            resume=args.resume,
            executor=args.executor,
        ),
        output_dir=args.output_dir,
    )


def _print_result_files(output_files: dict[str, str]) -> None:
    print("\nresult files:")
    for kind, path in output_files.items():
        print(f"  {kind:15s} {path}")


def _execute_spec(spec: ExperimentSpec, save_spec: Path | None = None) -> int:
    try:
        spec.validate(registries=True)
        if save_spec is not None:
            # Only validated specs are persisted — a saved spec must be
            # runnable by a later ``pytorchalfi run``.
            spec.save(save_spec)
            print(f"experiment spec written to {save_spec}")
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # Campaign-runtime failures propagate with their traceback — they are
    # bugs or environment problems, not spec mistakes.
    result = run(spec)
    plugin = TASKS.get(spec.task)
    print(plugin.report(result, spec))
    if result.output_files:
        _print_result_files(result.output_files)
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    import yaml

    try:
        spec = ExperimentSpec.load(args.spec)
    except (ValueError, KeyError, FileNotFoundError, yaml.YAMLError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if spec.sweep is not None:
        print(
            f"error: {args.spec} declares a sweep: section; use `pytorchalfi sweep`",
            file=sys.stderr,
        )
        return 1
    if args.output_dir is not None:
        spec.output_dir = args.output_dir
    if args.workers is not None:
        spec.backend.workers = args.workers
        if spec.backend.name == "serial" and args.workers > 1:
            # Built-in backends switch to sharded execution; registered
            # custom backends keep their name (they own their parallelism).
            spec.backend.name = "sharded"
    if args.retries is not None:
        spec.execution.retries = args.retries
    if args.shard_timeout is not None:
        spec.execution.shard_timeout = args.shard_timeout
    if args.executor is not None:
        spec.execution.executor = args.executor
    if args.resume:
        spec.execution.resume = True
        if spec.backend.name == "serial":
            # The run manifest lives in the sharded executor; with workers=1
            # the shards still run in-process.
            spec.backend.name = "sharded"
    return _execute_spec(spec)


def _load_sweep_spec(args: argparse.Namespace) -> ExperimentSpec:
    """Load a spec for ``pytorchalfi sweep`` and check it declares a grid."""
    import yaml

    try:
        spec = ExperimentSpec.load(args.spec)
    except (ValueError, KeyError, FileNotFoundError, yaml.YAMLError) as error:
        raise SystemExit(f"error: {error}")
    if spec.sweep is None:
        raise SystemExit(
            f"error: {args.spec} declares no sweep: section; use `pytorchalfi run`"
        )
    return spec


def _sweep_store(args: argparse.Namespace, spec: ExperimentSpec) -> CampaignStore:
    """Resolve the campaign-store directory (flag > spec > output_dir)."""
    if args.store is not None:
        return CampaignStore(args.store)
    if spec.sweep is not None and spec.sweep.store is not None:
        return CampaignStore(spec.sweep.store)
    if spec.output_dir is not None:
        return CampaignStore(Path(spec.output_dir) / "sweep_store")
    raise SystemExit(
        "error: no campaign store: pass --store, declare sweep.store in the "
        "spec, or set output_dir"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import StoreError, SweepError, expand, run_sweep

    spec = _load_sweep_spec(args)
    store = _sweep_store(args, spec)
    try:
        if args.dry_run:
            plan = expand(spec)
            plan.resolve()
            print(f"sweep {spec.name!r}: {len(plan)} points, store {store.root}")
            for point in plan.points:
                status = "cached" if store.lookup(point.run_id) else "pending"
                print(f"  point {point.index:>3}  {point.run_id}  {status:8s}  {point.overrides}")
            return 0
        result = run_sweep(
            spec, store=store, workers=args.workers, resume=args.resume, progress=print,
        )
    except (SweepError, StoreError, SpecError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print()
    print(result.format_table())
    print(
        f"\nsweep complete: points={len(result)} executed={result.executed} "
        f"cached={result.cached}"
    )
    _print_result_files(result.table_files)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import yaml

    failures = 0
    for path in args.specs:
        try:
            spec = ExperimentSpec.load(path)
            spec.validate(registries=True)
        except (ValueError, KeyError, FileNotFoundError, yaml.YAMLError) as error:
            failures += 1
            print(f"FAIL  {path}: {error}")
        else:
            print(f"ok    {path}  ({spec.task}: {spec.model.name} on {spec.dataset.name})")
    return 1 if failures else 0


def _cmd_run_imgclass(args: argparse.Namespace) -> int:
    dataset = ComponentSpec(
        "synthetic-classification",
        {
            "num_samples": args.images,
            "num_classes": args.num_classes,
            "noise": 0.25,
            "seed": args.data_seed,
        },
    )
    return _run_built_spec(args, "classification", dataset)


def _cmd_run_objdet(args: argparse.Namespace) -> int:
    dataset = ComponentSpec(
        "synthetic-coco",
        {"num_samples": args.images, "num_classes": args.num_classes, "seed": args.data_seed},
    )
    return _run_built_spec(args, "detection", dataset)


def _run_built_spec(args: argparse.Namespace, task: str, dataset: ComponentSpec) -> int:
    try:
        spec = _spec_from_args(args, task, dataset)
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return _execute_spec(spec, args.save_spec)


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.kind == "imgclass":
        analysis = analyze_classification_campaign(args.output_dir, args.campaign)
    else:
        analysis = analyze_detection_campaign(args.output_dir, args.campaign)
    print(
        comparison_table(
            [
                {
                    "campaign": analysis.campaign_name,
                    "inferences": analysis.num_inferences,
                    "masked": analysis.masked_rate,
                    "SDE": analysis.sde_rate,
                    "DUE": analysis.due_rate,
                }
            ],
            ["campaign", "inferences", "masked", "SDE", "DUE"],
            title="Campaign post-processing",
        )
    )
    if analysis.sde_by_bit:
        print()
        print(sde_per_bit_chart(analysis.sde_by_bit, title="corruption rate per flipped bit"))
    if analysis.sde_by_layer:
        print()
        print(sde_per_layer_chart(analysis.sde_by_layer, title="corruption rate per injected layer"))
    if analysis.flip_direction_counts:
        print(f"\nflip directions: {dict(analysis.flip_direction_counts)}")
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(analysis.as_dict(), indent=2))
        print(f"\nanalysis written to {args.json_out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pytorchalfi",
        description="Application-level fault injection campaigns for neural networks",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_cmd = subparsers.add_parser("run", help="run an experiment spec file")
    run_cmd.add_argument("spec", type=Path, help="experiment spec (YAML or JSON)")
    run_cmd.add_argument(
        "--output-dir", type=Path, default=None, help="override the spec's output directory"
    )
    run_cmd.add_argument(
        "--workers", type=int, default=None, help="override the spec's backend workers"
    )
    run_cmd.add_argument(
        "--retries", type=int, default=None,
        help="override the spec's per-shard retry budget",
    )
    run_cmd.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="override the spec's per-shard wall-clock deadline",
    )
    run_cmd.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from its run manifest",
    )
    run_cmd.add_argument(
        "--executor", choices=executor_names(), default=None,
        help="override the spec's forward-plan execution backend",
    )
    run_cmd.set_defaults(handler=_cmd_run_spec)

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter-grid sweep through the campaign store"
    )
    sweep.add_argument("spec", type=Path, help="experiment spec with a sweep: section")
    sweep.add_argument(
        "--store", type=Path, default=None,
        help="campaign store directory (default: the spec's sweep.store, then "
        "<output_dir>/sweep_store)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker processes per grid point (sharded execution when > 1); "
        "does not affect run IDs, so cached points still match",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: skip store-committed points and "
        "continue the in-flight point from its shard manifest",
    )
    sweep.add_argument(
        "--dry-run", action="store_true",
        help="list the expanded points with run IDs and cached/pending state "
        "without executing anything",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    validate = subparsers.add_parser("validate", help="validate experiment spec files")
    validate.add_argument("specs", type=Path, nargs="+", help="spec files to check")
    validate.set_defaults(handler=_cmd_validate)

    imgclass = subparsers.add_parser("run-imgclass", help="run a classification campaign")
    imgclass.add_argument(
        "--model", choices=MODELS.names(kind="classifier"), default="lenet5"
    )
    imgclass.add_argument("--num-classes", type=int, default=10)
    imgclass.add_argument(
        "--protection", choices=["none", *PROTECTIONS.names()], default="none"
    )
    imgclass.add_argument("--model-seed", type=int, default=0)
    imgclass.add_argument("--data-seed", type=int, default=0)
    _add_common_campaign_arguments(imgclass)
    imgclass.set_defaults(handler=_cmd_run_imgclass)

    objdet = subparsers.add_parser("run-objdet", help="run an object-detection campaign")
    objdet.add_argument("--model", choices=MODELS.names(kind="detector"), default="yolov3")
    objdet.add_argument("--num-classes", type=int, default=5)
    objdet.add_argument("--model-seed", type=int, default=0)
    objdet.add_argument("--data-seed", type=int, default=0)
    _add_common_campaign_arguments(objdet)
    objdet.set_defaults(handler=_cmd_run_objdet)

    analyze = subparsers.add_parser("analyze", help="post-process a stored campaign")
    analyze.add_argument("--output-dir", type=Path, required=True)
    analyze.add_argument("--campaign", type=str, required=True, help="campaign (file prefix) name")
    analyze.add_argument("--kind", choices=("imgclass", "objdet"), default="imgclass")
    analyze.add_argument("--json-out", type=Path, default=None, help="write the analysis as JSON")
    analyze.set_defaults(handler=_cmd_analyze)

    from repro.lint.cli import add_lint_arguments

    lint = subparsers.add_parser(
        "lint", help="run the determinism/bit-exactness static analysis"
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
