"""Command-line interface for fault injection campaigns.

Exposes the high-level workflows as a console script (``pytorchalfi``):

* ``pytorchalfi run-imgclass``  — classification campaign over the synthetic
  dataset with any model of the zoo, optional Ranger/Clipper hardening, full
  result file output.
* ``pytorchalfi run-objdet``    — object-detection campaign with IVMOD / mAP
  KPIs over the synthetic CoCo-style dataset.
* ``pytorchalfi analyze``       — post-process a stored campaign directory
  (bit-wise / layer-wise vulnerability breakdown).

The CLI intentionally mirrors the scenario parameters of ``default.yml`` so a
campaign can be fully described either in the configuration file or on the
command line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.alficore import GoldenCache, default_scenario, load_scenario
from repro.alficore.analysis import analyze_classification_campaign, analyze_detection_campaign
from repro.alficore.protection import apply_protection, collect_activation_bounds
from repro.alficore.test_error_models_imgclass import TestErrorModels_ImgClass
from repro.alficore.test_error_models_objdet import TestErrorModels_ObjDet
from repro.data import CocoLikeDetectionDataset, SyntheticClassificationDataset
from repro.models import MODEL_REGISTRY, build_model
from repro.models.detection import DETECTOR_REGISTRY, build_detector
from repro.models.pretrained import fit_classifier_head
from repro.visualization import bar_chart, comparison_table, sde_per_bit_chart, sde_per_layer_chart


def _add_common_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--images", type=int, default=40, help="number of dataset images")
    parser.add_argument("--num-faults", type=int, default=1, help="faults per image")
    parser.add_argument("--num-runs", type=int, default=1, help="epochs over the dataset")
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="images per batch (per_batch/per_epoch policies; per_image always uses 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sharded campaign execution (1 = serial)",
    )
    parser.add_argument(
        "--no-prefix-reuse", action="store_true",
        help="escape hatch: run the faulty lane as a full forward instead of a "
        "suffix-only forward from the first faulted layer",
    )
    parser.add_argument(
        "--golden-cache", type=int, default=256, metavar="MB",
        help="in-memory budget (MB) of the epoch-invariant golden cache; 0 disables it",
    )
    parser.add_argument(
        "--target", choices=("neurons", "weights"), default="weights", help="fault injection target"
    )
    parser.add_argument(
        "--value-type", choices=("bitflip", "number", "stuck_at"), default="bitflip",
        help="how the targeted value is corrupted",
    )
    parser.add_argument(
        "--bit-range", type=int, nargs=2, default=(23, 30), metavar=("LOW", "HIGH"),
        help="inclusive bit range for bit flips",
    )
    parser.add_argument(
        "--inj-policy", choices=("per_image", "per_batch", "per_epoch"), default="per_image",
        help="how long one fault set stays active",
    )
    parser.add_argument("--seed", type=int, default=1234, help="campaign random seed")
    parser.add_argument("--scenario", type=Path, default=None, help="optional scenario yml file")
    parser.add_argument("--fault-file", type=str, default="", help="reuse a stored fault matrix")
    parser.add_argument("--output-dir", type=Path, default=Path("campaign_output"))


def _scenario_from_args(args: argparse.Namespace):
    if args.scenario is not None:
        scenario = load_scenario(args.scenario)
    else:
        scenario = default_scenario()
    overrides = {
        "injection_target": args.target,
        "rnd_value_type": args.value_type,
        "rnd_bit_range": tuple(args.bit_range),
        "random_seed": args.seed,
    }
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    return scenario.copy(**overrides)


def _run_campaign(runner_cls, args: argparse.Namespace, **runner_kwargs):
    """Shared campaign plumbing of the ``run-imgclass``/``run-objdet`` commands."""
    golden_cache = (
        GoldenCache(byte_budget=args.golden_cache * 2**20) if args.golden_cache > 0 else None
    )
    runner = runner_cls(
        model_name=args.model,
        scenario=_scenario_from_args(args),
        output_dir=args.output_dir,
        workers=args.workers,
        prefix_reuse=not args.no_prefix_reuse,
        golden_cache=golden_cache,
        **runner_kwargs,
    )
    run = (
        runner.test_rand_ImgClass_SBFs_inj
        if runner_cls is TestErrorModels_ImgClass
        else runner.test_rand_ObjDet_SBFs_inj
    )
    return run(
        fault_file=args.fault_file,
        num_faults=args.num_faults,
        inj_policy=args.inj_policy,
        num_runs=args.num_runs,
    )


def _print_result_files(output_files: dict[str, str]) -> None:
    print("\nresult files:")
    for kind, path in output_files.items():
        print(f"  {kind:15s} {path}")


def _cmd_run_imgclass(args: argparse.Namespace) -> int:
    dataset = SyntheticClassificationDataset(
        num_samples=args.images, num_classes=args.num_classes, noise=0.25, seed=args.data_seed
    )
    model = build_model(args.model, num_classes=args.num_classes, seed=args.model_seed)
    fit_classifier_head(model, dataset, args.num_classes)

    resil_model = None
    if args.protection != "none":
        calibration = np.stack([dataset[i][0] for i in range(len(dataset))])
        bounds = collect_activation_bounds(model, [calibration])
        resil_model = apply_protection(model, bounds, args.protection)

    output = _run_campaign(
        TestErrorModels_ImgClass, args, model=model, resil_model=resil_model, dataset=dataset
    )

    rows = [
        {
            "variant": "corrupted",
            "golden top1": output.corrupted.golden_top1_accuracy,
            "masked": output.corrupted.masked_rate,
            "SDE": output.corrupted.sde_rate,
            "DUE": output.corrupted.due_rate,
        }
    ]
    if output.resil is not None:
        rows.append(
            {
                "variant": f"resil ({args.protection})",
                "golden top1": output.resil.golden_top1_accuracy,
                "masked": output.resil.masked_rate,
                "SDE": output.resil.sde_rate,
                "DUE": output.resil.due_rate,
            }
        )
    print(
        comparison_table(
            rows,
            ["variant", "golden top1", "masked", "SDE", "DUE"],
            title=f"{args.model}: {args.target} fault injection ({args.num_faults} fault(s)/image)",
        )
    )
    _print_result_files(output.output_files)
    return 0


def _cmd_run_objdet(args: argparse.Namespace) -> int:
    dataset = CocoLikeDetectionDataset(
        num_samples=args.images, num_classes=args.num_classes, seed=args.data_seed
    )
    model = build_detector(args.model, num_classes=args.num_classes, seed=args.model_seed).eval()
    output = _run_campaign(
        TestErrorModels_ObjDet, args, model=model, dataset=dataset, input_shape=(3, 64, 64)
    )
    ivmod = output.corrupted.ivmod
    print(
        bar_chart(
            {"IVMOD_SDE": ivmod.sde_rate, "IVMOD_DUE": ivmod.due_rate},
            title=f"{args.model}: {args.target} fault injection over {args.images} images",
            max_value=max(ivmod.sde_rate, 0.1),
        )
    )
    print(f"\ngolden mAP@0.5:    {output.corrupted.golden_map['mAP']:.4f}")
    print(f"corrupted mAP@0.5: {output.corrupted.corrupted_map['mAP']:.4f}")
    _print_result_files(output.output_files)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.kind == "imgclass":
        analysis = analyze_classification_campaign(args.output_dir, args.campaign)
    else:
        analysis = analyze_detection_campaign(args.output_dir, args.campaign)
    print(
        comparison_table(
            [
                {
                    "campaign": analysis.campaign_name,
                    "inferences": analysis.num_inferences,
                    "masked": analysis.masked_rate,
                    "SDE": analysis.sde_rate,
                    "DUE": analysis.due_rate,
                }
            ],
            ["campaign", "inferences", "masked", "SDE", "DUE"],
            title="Campaign post-processing",
        )
    )
    if analysis.sde_by_bit:
        print()
        print(sde_per_bit_chart(analysis.sde_by_bit, title="corruption rate per flipped bit"))
    if analysis.sde_by_layer:
        print()
        print(sde_per_layer_chart(analysis.sde_by_layer, title="corruption rate per injected layer"))
    if analysis.flip_direction_counts:
        print(f"\nflip directions: {dict(analysis.flip_direction_counts)}")
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(json.dumps(analysis.as_dict(), indent=2))
        print(f"\nanalysis written to {args.json_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pytorchalfi",
        description="Application-level fault injection campaigns for neural networks",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    imgclass = subparsers.add_parser("run-imgclass", help="run a classification campaign")
    imgclass.add_argument("--model", choices=sorted(MODEL_REGISTRY), default="lenet5")
    imgclass.add_argument("--num-classes", type=int, default=10)
    imgclass.add_argument("--protection", choices=("none", "ranger", "clipper"), default="none")
    imgclass.add_argument("--model-seed", type=int, default=0)
    imgclass.add_argument("--data-seed", type=int, default=0)
    _add_common_campaign_arguments(imgclass)
    imgclass.set_defaults(handler=_cmd_run_imgclass)

    objdet = subparsers.add_parser("run-objdet", help="run an object-detection campaign")
    objdet.add_argument("--model", choices=sorted(DETECTOR_REGISTRY), default="yolov3")
    objdet.add_argument("--num-classes", type=int, default=5)
    objdet.add_argument("--model-seed", type=int, default=0)
    objdet.add_argument("--data-seed", type=int, default=0)
    _add_common_campaign_arguments(objdet)
    objdet.set_defaults(handler=_cmd_run_objdet)

    analyze = subparsers.add_parser("analyze", help="post-process a stored campaign")
    analyze.add_argument("--output-dir", type=Path, required=True)
    analyze.add_argument("--campaign", type=str, required=True, help="campaign (file prefix) name")
    analyze.add_argument("--kind", choices=("imgclass", "objdet"), default="imgclass")
    analyze.add_argument("--json-out", type=Path, default=None, help="write the analysis as JSON")
    analyze.set_defaults(handler=_cmd_analyze)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
