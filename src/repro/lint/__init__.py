"""repro-lint — determinism & bit-exactness static analysis.

Every performance feature of this codebase (clone-free fault sessions,
sharded execution, prefix reuse, the golden cache) is only sound because of
invariants that are otherwise enforced at *runtime* via byte-identity tests:
fault draws are fully seeded, shard merges are byte-identical to serial
runs, and patch sessions restore weights bit-exactly.  ``repro.lint`` checks
the *source* for the usual ways those invariants get broken — before any
campaign runs:

``rng-discipline``
    legacy global-state ``np.random.*`` calls and unseeded
    ``default_rng()`` draws (breaks fault-matrix reproducibility and shard
    byte-identity).
``session-context``
    fault-injection sessions created outside a ``with`` block and never
    restored (breaks the bit-exact-restore guarantee).
``float-reduction-order``
    float accumulation over ``set`` iteration (hash order is
    run-dependent; breaks byte-identical merges).
``registry-mutation``
    direct mutation of legacy ``*_REGISTRY`` dicts instead of
    ``register_*`` calls.
``deprecated-facade``
    new imports of the deprecated ``TestErrorModels_*`` /
    ``CampaignRunner`` facades outside their shim modules.
``worker-purity``
    functions dispatched to worker pools that capture unpicklable objects
    or read mutable module-level state.

Rules are plug-ins registered on a :class:`~repro.experiments.registry.
Registry` (same pattern as the experiment component registries): unknown
rule names get did-you-mean errors, and every rule can be enabled/disabled
per run, suppressed per line (``# repro-lint: disable=<rule>``) or per file
(``# repro-lint: disable-file=<rule>``), or grandfathered via a checked-in
baseline file.

Run it as ``python -m repro.lint [paths...]`` or ``pytorchalfi lint``.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import FileContext, Finding, LintReport, lint_paths
from repro.lint.registry import RULES, register_rule, rule_names

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "RULES",
    "lint_paths",
    "load_baseline",
    "register_rule",
    "rule_names",
    "write_baseline",
]
