"""The lint-rule registry.

Rules are plug-ins on the same :class:`~repro.experiments.registry.Registry`
machinery that backs the experiment component registries: registration is a
decorator, duplicate names raise, unknown names raise with a did-you-mean
suggestion, and ``sorted(RULES)`` drives CLI ``choices`` and ``--list-rules``.

A rule is a callable ``rule(ctx: FileContext) -> Iterable[Finding]`` that
inspects one parsed file and yields findings.  Registration metadata:

``description``
    one-line summary shown by ``--list-rules``.
``default``
    whether the rule runs when no explicit ``--enable`` list is given
    (all built-in rules default to on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.experiments.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import FileContext, Finding

RuleChecker = Callable[["FileContext"], Iterable["Finding"]]

RULES = Registry("lint rule")

#: Pseudo-rule name attached to findings for files that fail to parse.  It is
#: not registered (it cannot be disabled), but suppression/baseline matching
#: treats it like any other rule name.
PARSE_ERROR_RULE = "parse-error"


def register_rule(
    name: str,
    checker: RuleChecker | None = None,
    *,
    description: str = "",
    default: bool = True,
    override: bool = False,
) -> RuleChecker | Callable[[RuleChecker], RuleChecker]:
    """Register a lint rule (usable as a decorator).

    Args:
        name: rule identifier used in reports, suppression comments and the
            baseline file (kebab-case by convention).
        checker: ``rule(ctx) -> Iterable[Finding]``; omit for decorator use.
        description: one-line summary for ``--list-rules``.
        default: run the rule when no ``--enable`` allow-list is given.
        override: replace an existing registration instead of raising.
    """
    return RULES.register(
        name, checker, description=description, default=default, override=override
    )


def rule_names(*, default_only: bool = False) -> list[str]:
    """Sorted registered rule names (optionally only default-enabled ones)."""
    if default_only:
        return RULES.names(default=True)
    return sorted(RULES)


def resolve_rules(
    enable: Iterable[str] | None = None, disable: Iterable[str] | None = None
) -> list[str]:
    """Return the active rule names for a run.

    Args:
        enable: explicit allow-list (unknown names raise with did-you-mean);
            ``None`` means "all default-enabled rules".
        disable: names removed from the active set (also validated).
    """
    if enable is None:
        active = rule_names(default_only=True)
    else:
        active = []
        for name in enable:
            RULES.get(name)  # raises UnknownComponentError with a suggestion
            if name not in active:
                active.append(name)
        active.sort()
    for name in disable or ():
        RULES.get(name)
        if name in active:
            active.remove(name)
    return active
