"""Finding reporters — human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import IO

from repro.lint.engine import LintReport


def render_text(report: LintReport, stream: IO[str]) -> None:
    """``path:line:col: [rule] message`` lines plus a one-line summary."""
    for finding in report.findings:
        stream.write(finding.render() + "\n")
    if report.findings:
        stream.write("\n")
    stream.write(report.summary() + "\n")


def render_json(report: LintReport, stream: IO[str]) -> None:
    """A stable JSON document (findings sorted by path/line/col/rule)."""
    payload = {
        "findings": [finding.as_dict() for finding in report.findings],
        "summary": {
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "files_checked": report.files_checked,
            "rules": report.rules,
        },
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


REPORTERS = {"text": render_text, "json": render_json}
