"""Shared AST helpers for the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (``fi.weight_patch_session``)."""
    return dotted_name(call.func)


def terminal_name(node: ast.AST) -> str | None:
    """The final identifier of a Name/Attribute (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


#: Receiver names that mark a method call as pool/executor dispatch (plain
#: ``values.map(...)`` style calls on other objects are ignored).
POOL_HINTS = ("pool", "executor")


def pool_dispatch_method(call: ast.Call) -> str | None:
    """Method name of a pool/executor dispatch call, ``None`` otherwise.

    A call counts as pool dispatch when it is a method call whose receiver is
    named like a pool (``pool.map(...)``, ``self.executor.submit(...)``) or is
    a direct ``Pool(...)``/``...Executor(...)`` construction.
    """
    if not isinstance(call.func, ast.Attribute):
        return None
    receiver = terminal_name(call.func.value)
    if receiver is not None:
        if any(hint in receiver.lower() for hint in POOL_HINTS):
            return call.func.attr
        return None
    if isinstance(call.func.value, ast.Call):
        callee = terminal_name(call.func.value.func) or ""
        if "Pool" in callee or "Executor" in callee:
            return call.func.attr
    return None


def is_set_expression(node: ast.AST) -> bool:
    """True for set displays, set comprehensions and set()/frozenset() calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in {"set", "frozenset"}
    return False


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class scopes."""
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            yield from walk_scope(child)


def assigned_names(node: ast.AST) -> set[str]:
    """All names bound (Store context) anywhere under ``node``."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(child.name)
        elif isinstance(child, (ast.Global, ast.Nonlocal)):
            names.update(child.names)
    return names


def function_parameters(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """All parameter names of ``fn``."""
    args = fn.args
    params = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
    return {arg.arg for arg in params}
