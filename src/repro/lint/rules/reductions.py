"""Rule ``float-reduction-order`` — no float accumulation in set order.

Shard merges are byte-identical to serial runs only because every float
reduction happens in a deterministic order (dataset order, registration
order, or an explicitly sorted order).  Iterating a ``set`` breaks that:
set iteration order depends on insertion history and, for strings, on the
per-process hash seed — the same values can sum to different IEEE-754
results in different processes.  Floating-point addition is not
associative, so ``sum({a, b, c})`` is allowed to differ between a shard
worker and the serial reference run in the last ulp — which is exactly the
difference the byte-identity harness exists to catch.

Flagged patterns:

* ``sum`` / ``math.fsum`` / ``np.sum`` / ``np.mean`` / ``np.prod`` over a
  set display, set comprehension, or ``set()``/``frozenset()`` call;
* ``for`` loops iterating such a set expression whose body accumulates via
  ``+=``, ``-=`` or ``*=``.

The fix: reduce over a ``sorted(...)`` of the set, or keep the data in an
order-preserving container (list/dict) from the start.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule
from repro.lint.rules._ast_utils import dotted_name, is_set_expression, walk_scope

RULE = "float-reduction-order"

#: Reducers whose float result depends on operand order.
_ORDER_SENSITIVE_REDUCERS = {"sum", "fsum", "mean", "prod", "nansum", "nanmean", "cumsum"}

_ACCUMULATING_OPS = (ast.Add, ast.Sub, ast.Mult)


def _reducer_attr(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    attr = name.rsplit(".", maxsplit=1)[-1]
    return attr if attr in _ORDER_SENSITIVE_REDUCERS else None


@register_rule(RULE, description="no order-sensitive float reductions over set iteration")
def check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            attr = _reducer_attr(node)
            if attr and node.args and is_set_expression(node.args[0]):
                yield ctx.finding(
                    node,
                    RULE,
                    f"'{attr}(...)' over a set: set iteration order is "
                    "run-dependent and float reduction is not associative, so the "
                    "result can differ between shard and serial runs; reduce over "
                    "sorted(...) or an order-preserving container",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)) and is_set_expression(node.iter):
            for child in walk_scope(node):
                if isinstance(child, ast.AugAssign) and isinstance(
                    child.op, _ACCUMULATING_OPS
                ):
                    yield ctx.finding(
                        node,
                        RULE,
                        "accumulation inside a loop over a set: set iteration order "
                        "is run-dependent, so the accumulated float can differ "
                        "between runs/shards; iterate sorted(...) instead",
                    )
                    break
