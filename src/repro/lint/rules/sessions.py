"""Rule ``session-context`` — fault sessions must be restored.

``WeightPatchSession`` patches corruptions into the *original* model's
weights; ``NeuronInjectionSession``/``NeuronFaultGroup`` install forward
hooks on a shared clone.  The bit-exact-restore guarantee — the property
every byte-identity test in this repo leans on — holds only if ``__exit__``
(or an explicit ``restore()``/``close()``) runs for every session that was
entered.  A session created outside a ``with`` block and never restored
leaves corrupted weights or stale hooks behind for every later fault group.

The rule flags calls to session constructors/factories whose result is
neither (a) used as a ``with`` context expression, (b) returned/yielded to a
caller (factory idiom), (c) passed on to another call (ownership transfer),
nor (d) bound to a name that is later ``with``-managed, ``close()``d,
``restore()``d, returned or passed on within the same scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule
from repro.lint.rules._ast_utils import terminal_name, walk_scope

RULE = "session-context"

#: Callables producing a session that owns un-restored model state.
_PRODUCERS = {
    "weight_patch_session",
    "neuron_injection_session",
    "fault_group_session",
    "WeightPatchSession",
    "NeuronInjectionSession",
    "NeuronFaultGroup",
}

#: Method names that count as explicitly releasing the session.
_RELEASING_ATTRS = {"close", "restore", "__exit__"}


def _is_session_producer(call: ast.Call) -> bool:
    name = terminal_name(call.func)
    if name in _PRODUCERS:
        return True
    if name == "activate" and isinstance(call.func, ast.Attribute):
        receiver = terminal_name(call.func.value)
        return receiver is not None and "session" in receiver.lower()
    return False


def _assign_targets(parent: ast.AST, call: ast.Call) -> list[str] | None:
    """Names the call result is bound to, or None if ``parent`` isn't a binding."""
    if isinstance(parent, ast.Assign):
        names: list[str] = []
        for target in parent.targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, ast.Tuple):
                names.extend(elt.id for elt in target.elts if isinstance(elt, ast.Name))
        return names
    if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
        return [parent.target.id]
    return None


def _name_is_released(scope: ast.AST, name: str) -> bool:
    """True if ``name`` is with-managed, released, returned or handed off."""
    for node in walk_scope(scope):
        if isinstance(node, ast.withitem):
            if any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node.context_expr)
            ):
                return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and node.value is not None:
            if any(
                isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node.value)
            ):
                return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _RELEASING_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if any(
                    isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(arg)
                ):
                    return True  # ownership handed to another callable
    return False


@register_rule(RULE, description="fault sessions must be with-managed or explicitly restored/closed")
def check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not _is_session_producer(node):
            continue

        safe = False
        bound_names: list[str] | None = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.withitem):
                safe = True  # the context expression of a with block
                break
            if isinstance(ancestor, (ast.Return, ast.Yield, ast.YieldFrom)):
                safe = True  # factory idiom: the caller owns the session
                break
            if isinstance(ancestor, ast.Call) and node is not ancestor:
                safe = True  # passed into another call (ownership transfer)
                break
            if isinstance(ancestor, ast.stmt):
                bound_names = _assign_targets(ancestor, node)
                break

        if safe:
            continue
        if bound_names:
            scope = ctx.enclosing_function(node) or ctx.tree
            if all(_name_is_released(scope, name) for name in bound_names):
                continue

        callee = terminal_name(node.func) or "session factory"
        yield ctx.finding(
            node,
            RULE,
            f"session from '{callee}(...)' is neither with-managed nor "
            "restored/closed: corrupted weights or stale hooks survive this "
            "fault group, breaking the bit-exact-restore guarantee; wrap it in "
            "'with ...:' (or return it to a caller that does)",
        )
