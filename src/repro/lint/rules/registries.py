"""Rule ``registry-mutation`` — components are registered, not poked in.

PR 4 absorbed the ad-hoc component dicts (``MODEL_REGISTRY``,
``DETECTOR_REGISTRY``) into the central :mod:`repro.experiments.registry`
singletons; the ``register_*`` functions are the supported write path.  They
guard against silent duplicate registrations, attach metadata that drives
CLI ``choices`` and did-you-mean errors, and keep legal ``rnd_value_type``
scenario values in sync with registered error models.  Writing straight
into a legacy ``*_REGISTRY`` dict bypasses all of that — the component
exists in one lookup path but not in the registries the Experiment API,
the CLI and the spec validator consult.

Flagged: subscript assignment/deletion and mutating method calls
(``update``/``setdefault``/``pop``/``popitem``/``clear``) on any name
matching ``*_REGISTRY``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule
from repro.lint.rules._ast_utils import terminal_name

RULE = "registry-mutation"

_REGISTRY_NAME = re.compile(r"[A-Z][A-Z0-9_]*_REGISTRY\Z")
_MUTATING_METHODS = {"update", "setdefault", "pop", "popitem", "clear", "__setitem__"}


def _registry_subscript(node: ast.AST) -> str | None:
    """Return the registry name when ``node`` is ``SOME_REGISTRY[...]``."""
    if isinstance(node, ast.Subscript):
        name = terminal_name(node.value)
        if name and _REGISTRY_NAME.match(name):
            return name
    return None


def _finding(ctx: FileContext, node: ast.AST, registry: str, how: str) -> Finding:
    return ctx.finding(
        node,
        RULE,
        f"direct {how} of legacy registry dict '{registry}': bypasses duplicate "
        "guards, metadata and did-you-mean errors; use the register_* functions "
        "from repro.experiments instead",
    )


@register_rule(RULE, description="no direct mutation of legacy *_REGISTRY dicts; use register_* calls")
def check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                registry = _registry_subscript(target)
                if registry:
                    yield _finding(ctx, node, registry, "item assignment")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                registry = _registry_subscript(target)
                if registry:
                    yield _finding(ctx, node, registry, "item deletion")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                name = terminal_name(node.func.value)
                if name and _REGISTRY_NAME.match(name):
                    yield _finding(ctx, node, name, f"'{node.func.attr}()' mutation")
