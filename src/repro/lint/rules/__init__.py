"""Built-in repro-lint rules.

Importing this package registers every built-in rule on
:data:`repro.lint.registry.RULES`.  Third-party rules register the same way::

    from repro.lint import register_rule

    @register_rule("my-rule", description="...")
    def my_rule(ctx):
        yield ctx.finding(node, "my-rule", "...")
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration side effect)
    dispatch,
    facades,
    reductions,
    registries,
    rng,
    sessions,
    workers,
)
