"""Rule ``worker-purity`` — shard workers must be pure, picklable functions.

:class:`~repro.alficore.campaign.ShardedCampaignExecutor` owes its central
guarantee — merged shard output byte-identical to a serial run — to worker
functions that derive *everything* from their pickled job argument.  Two
hazards break this silently:

* **unpicklable callables**: lambdas and closures dispatched to a
  ``multiprocessing`` pool work under the ``fork`` start method and crash
  (or worse, resolve differently) under ``spawn`` — the method used on
  macOS/Windows and the fallback in this repo's pool setup.
* **mutable module-level state**: a worker that reads a module-level
  list/dict/set observes the *parent* process state under ``fork`` but a
  freshly imported module under ``spawn``; with in-process execution
  (``workers=1``) earlier shards can even leak state into later ones.
  Either way the shard result depends on where it ran.

Flagged: lambdas/closures passed to pool dispatch calls (``map``,
``imap*``, ``starmap*``, ``apply*``, ``submit``), and dispatched
module-level functions that use ``global`` or read module-level mutable
containers instead of taking the state through their job argument.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule
from repro.lint.rules._ast_utils import (
    assigned_names,
    dotted_name,
    function_parameters,
    pool_dispatch_method,
    terminal_name,
)

RULE = "worker-purity"

_DISPATCH_METHODS = {
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
}

_MUTABLE_FACTORY_CALLS = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}


def _is_pool_dispatch(call: ast.Call) -> bool:
    return pool_dispatch_method(call) in _DISPATCH_METHODS


def _worker_expression(call: ast.Call) -> ast.expr | None:
    if call.args:
        worker = call.args[0]
        # functools.partial(fn, ...) — the wrapped callable is what matters.
        if isinstance(worker, ast.Call) and (dotted_name(worker.func) or "").endswith("partial"):
            return worker.args[0] if worker.args else None
        return worker
    return None


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers."""
    mutable: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        is_mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ) or (
            isinstance(value, ast.Call)
            and (terminal_name(value.func) or "") in _MUTABLE_FACTORY_CALLS
        )
        if is_mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
    return mutable


def _impure_reads(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, mutable_globals: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    local_names = function_parameters(fn) | assigned_names(fn)
    globals_declared: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
            yield node, f"uses 'global {', '.join(node.names)}'"
    reported: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in mutable_globals
            and node.id not in local_names - globals_declared
            and node.id not in reported
        ):
            reported.add(node.id)
            yield node, f"reads mutable module-level '{node.id}'"


@register_rule(RULE, description="pool-dispatched workers: picklable, no mutable module state")
def check(ctx: FileContext) -> Iterator[Finding]:
    module_functions = {
        stmt.name: stmt
        for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    mutable_globals = _module_mutable_globals(ctx.tree)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not _is_pool_dispatch(node):
            continue
        worker = _worker_expression(node)
        if worker is None:
            continue

        if isinstance(worker, ast.Lambda):
            yield ctx.finding(
                worker,
                RULE,
                "lambda dispatched to a worker pool: not picklable under the "
                "'spawn' start method; move the worker to a module-level function "
                "that derives all state from its job argument",
            )
            continue

        if not isinstance(worker, ast.Name):
            continue
        enclosing = ctx.enclosing_function(node)
        if enclosing is not None and any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == worker.id
            for stmt in ast.walk(enclosing)
        ):
            yield ctx.finding(
                worker,
                RULE,
                f"nested function '{worker.id}' dispatched to a worker pool: "
                "closures are not picklable under 'spawn'; hoist it to module "
                "level and pass captured state through the job argument",
            )
            continue

        fn = module_functions.get(worker.id)
        if fn is None:
            continue
        for offender, reason in _impure_reads(fn, mutable_globals):
            yield ctx.finding(
                offender,
                RULE,
                f"worker '{fn.name}' {reason}: under 'spawn' (or in-process "
                "fallback) workers see different module state than the parent, "
                "so shard output depends on where it ran; pass the state through "
                "the pickled job argument instead",
            )
