"""Rule ``supervised-dispatch`` — shard jobs go through the supervisor.

Fire-and-forget batch dispatch (``pool.map`` and friends) is how campaign
runs used to die: one OOM-killed, crashed or hung worker aborted the whole
``pool.map`` with an opaque exception — no retry, no timeout, nothing
resumable on disk.  :class:`repro.alficore.resilience.ShardSupervisor`
exists precisely so shard work is dispatched *supervised*: per-shard
wall-clock timeouts, dead-worker detection, deterministic re-queue with
capped exponential backoff, and crash-safe manifest/resume semantics.

Flagged: batch dispatch methods (``map``, ``map_async``, ``imap``,
``imap_unordered``, ``starmap``, ``starmap_async``) called on a pool-like
receiver anywhere outside the supervisor module itself.  Single-job
submission (``apply_async``/``submit``) is not flagged — it is the
building block supervised schedulers are made of (the ``worker-purity``
rule still checks what is submitted).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule
from repro.lint.rules._ast_utils import pool_dispatch_method

RULE = "supervised-dispatch"

_BATCH_DISPATCH = {
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
}

#: The one module allowed to talk to worker processes directly.
_SUPERVISOR_MODULE = "alficore/resilience.py"


@register_rule(RULE, description="pool batch dispatch outside the shard supervisor")
def check(ctx: FileContext) -> Iterator[Finding]:
    if ctx.display_path.endswith(_SUPERVISOR_MODULE):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        method = pool_dispatch_method(node)
        if method not in _BATCH_DISPATCH:
            continue
        yield ctx.finding(
            node,
            RULE,
            f"fire-and-forget pool dispatch '{method}': one crashed, killed or "
            "hung worker aborts the whole batch with no retry, no timeout and "
            "nothing resumable; submit shard jobs through "
            "repro.alficore.resilience.ShardSupervisor instead",
        )
