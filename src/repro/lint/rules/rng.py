"""Rule ``rng-discipline`` — every random draw must be seeded and local.

The fault matrix, the per-group corruption streams and the epoch
permutations are all derived from ``scenario.random_seed``; that is what
makes a sharded campaign byte-identical to a serial run and a rerun
byte-identical to its predecessor.  Two patterns silently break this:

* **legacy global-state numpy RNG** (``np.random.rand()``,
  ``np.random.seed()``, ...): draws consume one hidden process-global
  stream, so results depend on call *order* across the whole process —
  different shard geometry, different numbers.
* **unseeded generators** (``np.random.default_rng()`` with no seed or an
  explicit ``None``): fresh OS entropy per construction, never
  reproducible.

The fix is always the same: construct ``np.random.default_rng(seed)`` from
a scenario- or argument-derived seed and pass the generator down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule
from repro.lint.rules._ast_utils import dotted_name

RULE = "rng-discipline"

#: numpy.random module attributes that are *not* global-state draws.
_ALLOWED_RANDOM_ATTRS = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "RandomState",  # constructing an explicit (seedable) legacy stream
}


def _is_unseeded(call: ast.Call) -> bool:
    """True when ``default_rng`` is called with no seed or a literal None."""
    if not call.args and not call.keywords:
        return True
    if call.keywords:
        return False
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


@register_rule(RULE, description="seeded, local RNG only: no legacy np.random.* globals, no unseeded default_rng()")
def check(ctx: FileContext) -> Iterator[Finding]:
    numpy_names, random_names, rng_names = ctx.numpy_aliases()
    if not (numpy_names or random_names or rng_names):
        return

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")

        # np.random.<fn>(...) / random_alias.<fn>(...)
        attr: str | None = None
        if len(parts) == 3 and parts[0] in numpy_names and parts[1] == "random":
            attr = parts[2]
        elif len(parts) == 2 and parts[0] in random_names:
            attr = parts[1]

        if attr is not None and attr not in _ALLOWED_RANDOM_ATTRS:
            yield ctx.finding(
                node,
                RULE,
                f"legacy global-state RNG call 'np.random.{attr}(...)': draws depend "
                "on process-wide call order, breaking shard byte-identity; use a "
                "seeded np.random.default_rng(seed) generator passed down explicitly",
            )
            continue

        is_default_rng = (attr == "default_rng") or (len(parts) == 1 and parts[0] in rng_names)
        if is_default_rng and _is_unseeded(node):
            yield ctx.finding(
                node,
                RULE,
                "unseeded default_rng(): draws fresh OS entropy on every run, so the "
                "fault campaign is not reproducible; derive the seed from the "
                "scenario (e.g. default_rng(scenario.random_seed))",
            )
