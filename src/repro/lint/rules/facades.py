"""Rule ``deprecated-facade`` — no new code on the deprecated shims.

``TestErrorModels_ImgClass``, ``TestErrorModels_ObjDet`` and
``CampaignRunner`` survive only as deprecated shims that translate their
constructor arguments into an :class:`~repro.experiments.spec.ExperimentSpec`
and delegate to :func:`repro.experiments.run`.  They exist so *pre-existing*
user code keeps working byte-identically — new code written against them
accumulates exactly the API drift PR 4 removed, and misses everything the
spec path adds (validation, registries, sharding/caching configuration,
``CampaignResult`` merging).

Flagged: ``import``/``from ... import`` of the facade names anywhere except
the shim modules themselves, the ``repro.alficore`` package ``__init__``
that re-exports them for backwards compatibility, and their dedicated
shim-behavior tests.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.registry import register_rule

RULE = "deprecated-facade"

_FACADE_NAMES = {"TestErrorModels_ImgClass", "TestErrorModels_ObjDet", "CampaignRunner"}

#: Path suffixes where facade imports are legitimate: the shims themselves,
#: the backwards-compat re-export, and the tests that pin shim behavior.
_ALLOWED_SUFFIXES = (
    "repro/alficore/__init__.py",
    "repro/alficore/campaign.py",
    "repro/alficore/test_error_models_imgclass.py",
    "repro/alficore/test_error_models_objdet.py",
    "tests/test_alficore_campaign.py",
    "tests/test_alficore_imgclass.py",
    "tests/test_alficore_objdet.py",
    "tests/test_experiments_run.py",
)


def _is_facade(name: str) -> bool:
    base = name.rsplit(".", maxsplit=1)[-1]
    return base in _FACADE_NAMES or base.startswith("TestErrorModels_")


def _finding(ctx: FileContext, node: ast.AST, name: str) -> Finding:
    return ctx.finding(
        node,
        RULE,
        f"import of deprecated facade '{name}': it is a compatibility shim over "
        "the Experiment API; new code should build an ExperimentSpec and call "
        "repro.experiments.run (see README 'Experiment API')",
    )


@register_rule(RULE, description="no new imports of TestErrorModels_* / CampaignRunner outside their shims")
def check(ctx: FileContext) -> Iterator[Finding]:
    if ctx.display_path.endswith(_ALLOWED_SUFFIXES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if _is_facade(alias.name):
                    yield _finding(ctx, node, alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if _is_facade(alias.name):
                    yield _finding(ctx, node, alias.name)
