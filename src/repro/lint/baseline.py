"""Baseline files — grandfathering pre-existing findings.

A baseline is a checked-in JSON file recording known findings so that a
legacy violation does not fail CI while *new* violations still do.  Findings
are matched on ``(rule, path, message)`` — line numbers are stored for
human readers but ignored during matching, so unrelated edits that shift a
grandfathered line do not resurrect it.

The repository policy (see README "Static analysis") is an **empty**
baseline: real violations get fixed, deliberate exceptions get an inline
``# repro-lint: disable=<rule>`` with a justifying comment.  The baseline
exists as an escape hatch for incremental adoption of future rules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding

#: Default baseline location, resolved relative to the working directory.
DEFAULT_BASELINE = Path(".repro-lint-baseline.json")

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed or incompatible baseline files."""


def load_baseline(path: str | Path) -> list[Finding]:
    """Load a baseline file written by :func:`write_baseline`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"malformed baseline {path}: {error}") from error
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(f"malformed baseline {path}: expected a 'findings' object")
    version = data.get("version", _FORMAT_VERSION)
    if version > _FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path} has format version {version}; this repro-lint "
            f"only understands <= {_FORMAT_VERSION}"
        )
    try:
        return [Finding.from_dict(entry) for entry in data["findings"]]
    except (KeyError, TypeError, ValueError) as error:
        raise BaselineError(f"malformed baseline entry in {path}: {error}") from error


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable output)."""
    payload = {
        "version": _FORMAT_VERSION,
        "findings": [finding.as_dict() for finding in sorted(findings)],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
