"""The repro-lint engine: file discovery, parsing, suppressions, dispatch.

One :class:`FileContext` is built per Python file (AST, source lines, parent
links, numpy-alias tracking) and handed to every active rule.  Findings then
pass through two filters before they are reported:

* **suppression comments** — ``# repro-lint: disable=<rule>[,<rule>...]`` on
  the flagged line, or ``# repro-lint: disable-file=<rule>[,...]`` anywhere
  in the file (``all`` matches every rule).  Comments are located with
  :mod:`tokenize`, so ``#`` inside string literals never counts.
* **baseline** — grandfathered findings recorded by ``--write-baseline``
  (matched on ``(rule, path, message)``, so unrelated line drift does not
  resurrect them; see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.lint.registry import PARSE_ERROR_RULE, RULES, resolve_rules

#: Directory names never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".benchmarks"}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint\s*:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[\w\-, ]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching — deliberately line-free."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data.get("line", 0)),  # type: ignore[arg-type]
            col=int(data.get("col", 0)),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class FileContext:
    """Everything a rule needs to know about one parsed Python file.

    Attributes:
        path: the file on disk.
        display_path: normalized (posix, relative-to-cwd when possible) path
            used in findings, suppression accounting and the baseline.
        source: full file text.
        lines: source split into lines (1-based access via ``lines[line-1]``).
        tree: the parsed :class:`ast.Module`.
    """

    def __init__(self, path: Path, source: str, tree: ast.Module, display_path: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._numpy_aliases: tuple[set[str], set[str], set[str]] | None = None

    # ------------------------------------------------------------------ #
    # structure helpers
    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module root)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node`` from the innermost outwards."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest function scope containing ``node`` (None at module level)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def numpy_aliases(self) -> tuple[set[str], set[str], set[str]]:
        """Local names bound to numpy, numpy.random and default_rng.

        Returns ``(numpy_names, random_names, default_rng_names)`` for e.g.
        ``import numpy as np`` / ``from numpy import random`` /
        ``from numpy.random import default_rng``.
        """
        if self._numpy_aliases is None:
            numpy_names: set[str] = set()
            random_names: set[str] = set()
            rng_names: set[str] = set()
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "numpy":
                            numpy_names.add(alias.asname or "numpy")
                        elif alias.name == "numpy.random" and alias.asname:
                            random_names.add(alias.asname)
                elif isinstance(node, ast.ImportFrom):
                    if node.module == "numpy":
                        for alias in node.names:
                            if alias.name == "random":
                                random_names.add(alias.asname or "random")
                    elif node.module == "numpy.random":
                        for alias in node.names:
                            if alias.name == "default_rng":
                                rng_names.add(alias.asname or "default_rng")
            self._numpy_aliases = (numpy_names, random_names, rng_names)
        return self._numpy_aliases

    # ------------------------------------------------------------------ #
    # finding construction
    # ------------------------------------------------------------------ #
    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            rule=rule,
            message=message,
        )


@dataclass
class Suppressions:
    """Per-file suppression state extracted from the source comments."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    def matches(self, finding: Finding) -> bool:
        for rules in (self.file_rules, self.line_rules.get(finding.line, ())):
            if finding.rule in rules or "all" in rules:
                return True
        return False


def scan_suppressions(source: str) -> Suppressions:
    """Extract ``# repro-lint:`` suppression comments via :mod:`tokenize`."""
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            rules = {name.strip() for name in match.group("rules").split(",") if name.strip()}
            if match.group("kind") == "disable-file":
                suppressions.file_rules |= rules
            else:
                suppressions.line_rules.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # the ast parse error is reported instead
    return suppressions


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def summary(self) -> str:
        noun = "finding" if len(self.findings) == 1 else "findings"
        parts = [
            f"{len(self.findings)} {noun}",
            f"{self.files_checked} files checked",
            f"{len(self.rules)} rules active",
        ]
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed by comments")
        if self.baselined:
            parts.append(f"{self.baselined} grandfathered by baseline")
        return ", ".join(parts)


def iter_python_files(targets: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` file list."""
    seen: set[Path] = set()
    files: list[Path] = []

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            files.append(path)

    for target in targets:
        path = Path(target)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    add(candidate)
        elif path.suffix == ".py" and path.exists():
            add(path)
        elif not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")
    return files


def display_path(path: Path) -> str:
    """Posix path relative to cwd when possible (stable across machines)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def build_context(path: Path) -> tuple[FileContext | None, Finding | None]:
    """Parse one file; on syntax errors return a parse-error finding instead."""
    shown = display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError, UnicodeDecodeError) as error:
        line = getattr(error, "lineno", 0) or 0
        col = getattr(error, "offset", 0) or 0
        message = getattr(error, "msg", None) or str(error)
        return None, Finding(shown, line, col, PARSE_ERROR_RULE, f"cannot parse: {message}")
    return FileContext(path, source, tree, shown), None


def lint_paths(
    targets: Iterable[str | Path],
    *,
    enable: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
    baseline: Iterable[Finding] | None = None,
) -> LintReport:
    """Lint ``targets`` and return a :class:`LintReport`.

    Args:
        targets: files and/or directories (recursed for ``*.py``).
        enable: explicit rule allow-list (default: all default-enabled rules).
        disable: rules to remove from the active set.
        baseline: grandfathered findings (matched line-insensitively).
    """
    # Built-in rules register on import; deferred so the registry is never
    # populated as a side effect of importing repro.lint submodules.
    import repro.lint.rules  # noqa: F401

    report = LintReport(rules=resolve_rules(enable, disable))
    baseline_keys = {finding.baseline_key for finding in baseline or ()}
    checkers = [(name, RULES.get(name)) for name in report.rules]

    for path in iter_python_files(targets):
        report.files_checked += 1
        ctx, parse_finding = build_context(path)
        if ctx is None:
            if parse_finding is not None:
                report.findings.append(parse_finding)
            continue
        suppressions = scan_suppressions(ctx.source)
        for name, checker in checkers:
            for finding in checker(ctx):
                if suppressions.matches(finding):
                    report.suppressed += 1
                elif finding.baseline_key in baseline_keys:
                    report.baselined += 1
                else:
                    report.findings.append(finding)

    report.findings.sort()
    return report
