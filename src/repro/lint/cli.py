"""Command-line front end for repro-lint.

Standalone module entry (``python -m repro.lint``) and the implementation
behind the ``pytorchalfi lint`` subcommand — both share
:func:`add_lint_arguments` / :func:`run_from_args`, so flags and behavior
cannot drift apart.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Sequence

from repro.experiments.registry import UnknownComponentError
from repro.lint.baseline import DEFAULT_BASELINE, BaselineError, load_baseline, write_baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import RULES, rule_names
from repro.lint.reporters import REPORTERS

#: Targets linted when none are given (filtered to those that exist).
DEFAULT_TARGETS = ("src", "examples", "benchmarks")


def _comma_list(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared repro-lint options to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", type=Path, metavar="PATH",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)} if present)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text", help="report format"
    )
    parser.add_argument(
        "--enable", type=_comma_list, default=None, metavar="RULES",
        help="comma-separated allow-list of rules to run (default: all)",
    )
    parser.add_argument(
        "--disable", type=_comma_list, default=None, metavar="RULES",
        help="comma-separated rules to skip",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )


def _resolve_targets(paths: Sequence[Path]) -> list[Path]:
    if paths:
        return list(paths)
    targets = [Path(name) for name in DEFAULT_TARGETS if Path(name).exists()]
    if not targets:
        raise SystemExit(
            "repro-lint: no paths given and no default targets "
            f"({', '.join(DEFAULT_TARGETS)}) found in the working directory"
        )
    return targets


def _list_rules(stream: IO[str]) -> None:
    import repro.lint.rules  # noqa: F401  (register built-ins)

    for name in rule_names():
        meta = RULES.metadata(name)
        stream.write(f"{name:24s} {meta.get('description', '')}\n")


def run_from_args(args: argparse.Namespace, stream: IO[str] | None = None) -> int:
    """Execute a lint run described by parsed arguments; returns the exit code."""
    stream = stream if stream is not None else sys.stdout
    if args.list_rules:
        _list_rules(stream)
        return 0

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE
    baseline = []
    if baseline_path is not None and not args.no_baseline and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            raise SystemExit(f"repro-lint: baseline file not found: {baseline_path}")
        except BaselineError as error:
            raise SystemExit(f"repro-lint: {error}")

    try:
        report = lint_paths(
            _resolve_targets(args.paths),
            enable=args.enable,
            disable=args.disable,
            baseline=baseline,
        )
    except UnknownComponentError as error:
        raise SystemExit(f"repro-lint: {error}")
    except FileNotFoundError as error:
        raise SystemExit(f"repro-lint: {error}")

    if args.write_baseline:
        target = baseline_path if baseline_path is not None else DEFAULT_BASELINE
        write_baseline(target, report.findings)
        stream.write(f"wrote {len(report.findings)} findings to {target}\n")
        return 0

    REPORTERS[args.format](report, stream)
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & bit-exactness static analysis for this repository.",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
