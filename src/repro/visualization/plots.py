"""Plain-text charts and tables for campaign results."""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Render a horizontal bar chart as text.

    Args:
        values: mapping of label -> value.
        title: optional chart heading.
        width: maximum bar width in characters.
        unit: unit string appended to the value.
        max_value: scale of a full-width bar; defaults to the maximum value.

    Returns:
        A multi-line string.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    scale = max_value if max_value is not None else max(values.values())
    scale = scale if scale > 0 else 1.0
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        filled = int(round(min(max(value / scale, 0.0), 1.0) * width))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} | {bar.ljust(width)} {value:.4f}{unit}")
    return "\n".join(lines)


def comparison_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Render a list of dictionaries as an aligned text table."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    widths = {
        column: max(len(column), max(len(_format_cell(row.get(column))) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_format_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def sde_per_bit_chart(sde_by_bit: Mapping[int, float], title: str = "SDE rate per bit position") -> str:
    """Chart SDE rate against flipped bit position (Section V item 2d)."""
    ordered = {f"bit {bit:02d}": rate for bit, rate in sorted(sde_by_bit.items())}
    return bar_chart(ordered, title=title, max_value=1.0)


def sde_per_layer_chart(
    sde_by_layer: Mapping[int, float],
    title: str = "SDE rate per layer",
    layer_names: Mapping[int, str] | None = None,
) -> str:
    """Chart SDE rate against the injected layer (Section V item 2a)."""
    ordered = {}
    for layer, rate in sorted(sde_by_layer.items()):
        label = f"layer {layer:02d}"
        if layer_names and layer in layer_names:
            label = f"{label} ({layer_names[layer]})"
        ordered[label] = rate
    return bar_chart(ordered, title=title, max_value=1.0)
