"""Text-based visualisation of fault injection results.

The original PyTorchALFI ships matplotlib-based plotting limited to object
detection.  In this offline reproduction the visualisation layer renders
results as plain-text bar charts and CSV-ready tables, which keeps the
dependency footprint minimal while still giving campaigns a human-readable
summary (and the benchmark harness something to print for every figure).
"""

from repro.visualization.plots import (
    bar_chart,
    comparison_table,
    sde_per_bit_chart,
    sde_per_layer_chart,
)

__all__ = [
    "bar_chart",
    "comparison_table",
    "sde_per_bit_chart",
    "sde_per_layer_chart",
]
