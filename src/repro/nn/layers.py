"""Layer modules built on top of :mod:`repro.nn.functional`.

The three layer types PyTorchALFI supports as fault injection targets
(``Conv2d``, ``Conv3d``, ``Linear``) are implemented here together with the
auxiliary layers needed to express realistic CNN classifiers and detectors.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F, init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """2D convolution layer with optional bias.

    Weight layout is ``(out_channels, in_channels, kh, kw)`` which matches
    the weight fault-location convention of the paper (rows 2 and 3 of the
    weight fault matrix address the output and input channel respectively).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        groups: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if groups < 1 or in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError(
                f"groups ({groups}) must divide in_channels ({in_channels}) and "
                f"out_channels ({out_channels})"
            )
        rng = rng if rng is not None else init.make_rng(0)
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.groups = groups
        fan_in = (in_channels // groups) * kh * kw
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels // groups, kh, kw), fan_in, rng)
        )
        if bias:
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng))
        else:
            self.bias = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        return F.conv2d(x, self.weight.data, bias, self.stride, self.padding, self.groups)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups}"
        )


class Conv3d(Module):
    """3D convolution layer over ``(N, C, D, H, W)`` volumes."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int, int],
        stride: int | tuple[int, int, int] = 1,
        padding: int | tuple[int, int, int] = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng if rng is not None else init.make_rng(0)
        kd, kh, kw = F._triple(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kd, kh, kw)
        self.stride = F._triple(stride)
        self.padding = F._triple(padding)
        fan_in = in_channels * kd * kh * kw
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kd, kh, kw), fan_in, rng)
        )
        if bias:
            self.bias = Parameter(init.uniform_bias((out_channels,), fan_in, rng))
        else:
            self.bias = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        return F.conv3d(x, self.weight.data, bias, self.stride, self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )


class Linear(Module):
    """Fully connected layer (``y = x W^T + b``)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng if rng is not None else init.make_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), in_features, rng))
        if bias:
            self.bias = Parameter(init.uniform_bias((out_features,), in_features, rng))
        else:
            self.bias = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bias = self.bias.data if self.bias is not None else None
        return F.linear(x, self.weight.data, bias)

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}"


class BatchNorm2d(Module):
    """Inference-mode batch normalisation with learnable affine transform."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.batch_norm2d(
            x,
            self._buffers["running_mean"],
            self._buffers["running_var"],
            self.weight.data,
            self.bias.data,
            self.eps,
        )

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}"


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU activation with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.1):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.leaky_relu(x, self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.tanh(x)


class Softmax(Module):
    """Softmax along a configurable axis."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(x, self.axis)

    def extra_repr(self) -> str:
        return f"axis={self.axis}"


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AdaptiveAvgPool2d(Module):
    """Adaptive average pooling to a fixed output size."""

    def __init__(self, output_size: int | tuple[int, int]):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.adaptive_avg_pool2d(x, self.output_size)

    def extra_repr(self) -> str:
        return f"output_size={self.output_size}"


class Upsample(Module):
    """Nearest-neighbour upsampling by an integer scale factor."""

    def __init__(self, scale_factor: int = 2):
        super().__init__()
        self.scale_factor = scale_factor

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.upsample_nearest(x, self.scale_factor)

    def extra_repr(self) -> str:
        return f"scale_factor={self.scale_factor}"


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.flatten(x, self.start_dim)


class Dropout(Module):
    """Dropout layer; identity at inference time (the only mode used here)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else init.make_rng(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            return np.asarray(x, dtype=np.float32)
        mask = self._rng.random(np.asarray(x).shape) >= self.p
        return (np.asarray(x, dtype=np.float32) * mask) / (1.0 - self.p)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Identity(Module):
    """Pass-through layer."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x
