"""Functional (stateless) neural-network operations.

All operations work on numpy arrays with the PyTorch layout conventions:
images are ``(N, C, H, W)``, volumes are ``(N, C, D, H, W)`` and linear
inputs are ``(N, features)``.  Convolutions use im2col + matmul which keeps
the pure-python substrate fast enough for fault injection campaigns over
small synthetic datasets.
"""

from __future__ import annotations

import numpy as np


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    """Normalise an int-or-pair argument to a pair."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _triple(value: int | tuple[int, int, int]) -> tuple[int, int, int]:
    """Normalise an int-or-triple argument to a triple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 3:
            raise ValueError(f"expected a triple, got {value!r}")
        return int(value[0]), int(value[1]), int(value[2])
    return int(value), int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(
    images: np.ndarray,
    kernel_size: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into columns for matmul-based convolution.

    Args:
        images: input of shape ``(N, C, H, W)``.
        kernel_size: ``(kh, kw)``.
        stride: ``(sh, sw)``.
        padding: ``(ph, pw)`` zero padding.

    Returns:
        A tuple ``(columns, out_h, out_w)`` where ``columns`` has shape
        ``(N, C * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = images.shape
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if ph or pw:
        images = np.pad(images, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")

    # Strided view over all (kh, kw) patches.
    stride_n, stride_c, stride_h, stride_w = images.strides
    patches = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(stride_n, stride_c, stride_h * sh, stride_w * sw, stride_h, stride_w),
        writeable=False,
    )
    columns = patches.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(columns), out_h, out_w


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
    groups: int = 1,
) -> np.ndarray:
    """2D convolution with optional channel groups.

    Args:
        x: input of shape ``(N, C_in, H, W)``.
        weight: kernel of shape ``(C_out, C_in / groups, kh, kw)``.
        bias: optional per-output-channel bias of shape ``(C_out,)``.
        stride: stride as int or pair.
        padding: zero padding as int or pair.
        groups: number of channel groups; ``groups == C_in`` gives a
            depthwise convolution (MobileNet-style).

    Returns:
        Output of shape ``(N, C_out, H_out, W_out)``.
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"conv2d expects 4D input (N, C, H, W), got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects 4D weight (O, I, kh, kw), got shape {weight.shape}")
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    if x.shape[1] != weight.shape[1] * groups:
        raise ValueError(
            f"input channels ({x.shape[1]}) do not match weight channels "
            f"({weight.shape[1]}) * groups ({groups})"
        )
    if weight.shape[0] % groups != 0:
        raise ValueError(
            f"output channels ({weight.shape[0]}) must be divisible by groups ({groups})"
        )

    if groups > 1:
        in_per_group = x.shape[1] // groups
        out_per_group = weight.shape[0] // groups
        group_outputs = []
        for group in range(groups):
            group_input = x[:, group * in_per_group : (group + 1) * in_per_group]
            group_weight = weight[group * out_per_group : (group + 1) * out_per_group]
            group_outputs.append(conv2d(group_input, group_weight, None, stride, padding))
        output = np.concatenate(group_outputs, axis=1)
        if bias is not None:
            output += np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1)
        return output.astype(np.float32)

    out_channels, _, kh, kw = weight.shape
    columns, out_h, out_w = im2col(x, (kh, kw), _pair(stride), _pair(padding))
    kernel_matrix = weight.reshape(out_channels, -1)
    output = np.einsum("of,nfp->nop", kernel_matrix, columns, optimize=True)
    output = output.reshape(x.shape[0], out_channels, out_h, out_w)
    if bias is not None:
        output += np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1)
    return output.astype(np.float32)


def conv3d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int | tuple[int, int, int] = 1,
    padding: int | tuple[int, int, int] = 0,
) -> np.ndarray:
    """3D convolution over volumes of shape ``(N, C, D, H, W)``.

    Implemented by looping over the (small) kernel depth and reusing the
    2D im2col path, which is accurate and fast enough for the small conv3d
    layers used in the test models.
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    if x.ndim != 5:
        raise ValueError(f"conv3d expects 5D input (N, C, D, H, W), got shape {x.shape}")
    if weight.ndim != 5:
        raise ValueError(f"conv3d expects 5D weight (O, I, kd, kh, kw), got {weight.shape}")
    n, c, d, h, w = x.shape
    out_channels, in_channels, kd, kh, kw = weight.shape
    if c != in_channels:
        raise ValueError(f"input channels ({c}) do not match weight channels ({in_channels})")
    sd, sh, sw = _triple(stride)
    pd, ph, pw = _triple(padding)
    out_d = conv_output_size(d, kd, sd, pd)

    if pd:
        x = np.pad(x, ((0, 0), (0, 0), (pd, pd), (0, 0), (0, 0)), mode="constant")

    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    output = np.zeros((n, out_channels, out_d, out_h, out_w), dtype=np.float32)
    for od in range(out_d):
        accum = np.zeros((n, out_channels, out_h, out_w), dtype=np.float32)
        for kz in range(kd):
            plane = x[:, :, od * sd + kz, :, :]
            accum += conv2d(plane, weight[:, :, kz, :, :], None, (sh, sw), (ph, pw))
        output[:, :, od, :, :] = accum
    if bias is not None:
        output += np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1, 1)
    return output


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully connected layer ``y = x @ W.T + b``.

    Args:
        x: input of shape ``(N, in_features)``.
        weight: weight of shape ``(out_features, in_features)``.
        bias: optional bias of shape ``(out_features,)``.
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"linear expects 2D input (N, features), got shape {x.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"input features ({x.shape[1]}) do not match weight in_features ({weight.shape[1]})"
        )
    output = x @ weight.T
    if bias is not None:
        output = output + np.asarray(bias, dtype=np.float32)
    return output.astype(np.float32)


# --------------------------------------------------------------------------- #
# activations
# --------------------------------------------------------------------------- #
def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float32), 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    """Leaky ReLU with configurable negative slope."""
    x = np.asarray(x, dtype=np.float32)
    return np.where(x >= 0, x, negative_slope * x).astype(np.float32)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float32)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=np.float32))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    The input is made contiguous first: numpy reductions block by memory
    layout, so canonicalising keeps the result independent of the input's
    strides (required for executor bit-exactness, see ``docs/ir.md``).
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log of softmax, computed stably (layout-canonical, like :func:`softmax`)."""
    x = np.ascontiguousarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


# --------------------------------------------------------------------------- #
# pooling and resampling
# --------------------------------------------------------------------------- #
def max_pool2d(
    x: np.ndarray,
    kernel_size: int | tuple[int, int],
    stride: int | tuple[int, int] | None = None,
    padding: int | tuple[int, int] = 0,
) -> np.ndarray:
    """Max pooling over ``(N, C, H, W)`` inputs."""
    return _pool2d(x, kernel_size, stride, padding, mode="max")


def avg_pool2d(
    x: np.ndarray,
    kernel_size: int | tuple[int, int],
    stride: int | tuple[int, int] | None = None,
    padding: int | tuple[int, int] = 0,
) -> np.ndarray:
    """Average pooling over ``(N, C, H, W)`` inputs."""
    return _pool2d(x, kernel_size, stride, padding, mode="avg")


def _pool2d(x, kernel_size, stride, padding, mode: str) -> np.ndarray:
    """Vectorized pooling over all windows via ``sliding_window_view``.

    ``sliding_window_view`` materialises a bounds-checked view over every
    ``(kh, kw)`` window; striding is a cheap slice of that view, and the
    max/mean reduction runs once over the whole window volume instead of a
    python loop per output position.  :func:`_pool2d_reference` keeps the
    naive window loop as the correctness oracle (asserted equal in tests).

    The input is made contiguous first so the windowed reduction order — and
    with it the result bits — do not depend on the input's memory layout.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"pooling expects 4D input, got shape {x.shape}")
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        fill = -np.inf if mode == "max" else 0.0
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=fill)
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw]
    assert windows.shape[2] == out_h and windows.shape[3] == out_w
    if mode == "max":
        return windows.max(axis=(4, 5)).astype(np.float32)
    return windows.mean(axis=(4, 5)).astype(np.float32)


def _pool2d_reference(x, kernel_size, stride, padding, mode: str) -> np.ndarray:
    """Naive per-window pooling loop (correctness oracle for :func:`_pool2d`)."""
    x = np.ascontiguousarray(x, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"pooling expects 4D input, got shape {x.shape}")
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        fill = -np.inf if mode == "max" else 0.0
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=fill)
    output = np.empty((n, c, out_h, out_w), dtype=np.float32)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
            if mode == "max":
                output[:, :, i, j] = window.max(axis=(2, 3))
            else:
                # Innermost-axis-first summation mirrors the reduction order
                # of ``mean(axis=(4, 5))`` on the window view, keeping the
                # reference bit-identical to the vectorized path.
                output[:, :, i, j] = window.sum(axis=3).sum(axis=2) / (kh * kw)
    return output


def adaptive_avg_pool2d(x: np.ndarray, output_size: int | tuple[int, int]) -> np.ndarray:
    """Adaptive average pooling to a fixed output size (layout-canonical)."""
    x = np.ascontiguousarray(x, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"adaptive_avg_pool2d expects 4D input, got shape {x.shape}")
    out_h, out_w = _pair(output_size)
    n, c, h, w = x.shape
    output = np.zeros((n, c, out_h, out_w), dtype=np.float32)
    for i in range(out_h):
        h0 = (i * h) // out_h
        h1 = max(((i + 1) * h + out_h - 1) // out_h, h0 + 1)
        for j in range(out_w):
            w0 = (j * w) // out_w
            w1 = max(((j + 1) * w + out_w - 1) // out_w, w0 + 1)
            output[:, :, i, j] = x[:, :, h0:h1, w0:w1].mean(axis=(2, 3))
    return output


def upsample_nearest(x: np.ndarray, scale_factor: int) -> np.ndarray:
    """Nearest-neighbour upsampling by an integer factor."""
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"upsample expects 4D input, got shape {x.shape}")
    factor = int(scale_factor)
    if factor < 1:
        raise ValueError(f"scale_factor must be >= 1, got {scale_factor}")
    return x.repeat(factor, axis=2).repeat(factor, axis=3)


# --------------------------------------------------------------------------- #
# normalisation
# --------------------------------------------------------------------------- #
def batch_norm2d(
    x: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    weight: np.ndarray | None = None,
    bias: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalisation over ``(N, C, H, W)`` inputs."""
    x = np.asarray(x, dtype=np.float32)
    mean = np.asarray(running_mean, dtype=np.float32).reshape(1, -1, 1, 1)
    var = np.asarray(running_var, dtype=np.float32).reshape(1, -1, 1, 1)
    normalized = (x - mean) / np.sqrt(var + eps)
    if weight is not None:
        normalized = normalized * np.asarray(weight, dtype=np.float32).reshape(1, -1, 1, 1)
    if bias is not None:
        normalized = normalized + np.asarray(bias, dtype=np.float32).reshape(1, -1, 1, 1)
    return normalized.astype(np.float32)


def flatten(x: np.ndarray, start_dim: int = 1) -> np.ndarray:
    """Flatten all dimensions from ``start_dim`` onwards."""
    x = np.asarray(x)
    shape = x.shape[:start_dim] + (-1,)
    return x.reshape(shape)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy loss between logits ``(N, classes)`` and int targets."""
    logits = np.asarray(logits, dtype=np.float32)
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(len(targets)), targets]
    return float(-picked.mean())
