"""Per-segment op IR and pluggable executors for :class:`~repro.nn.forward_plan.ForwardPlan`.

A traced forward plan chains *segments* (single modules) linearly.  This
module lowers each segment into a small list of :class:`IROp` nodes — conv,
bias-add, relu, elementwise chains, pooling — so executors can work at op
granularity instead of treating every module call as opaque:

* :func:`lower_segment` maps a leaf module to its op list (``None`` for
  module types the IR does not model, e.g. atomic residual blocks);
* :class:`InterpreterExecutor` runs the lowered ops one by one through the
  same :mod:`repro.nn.functional` kernels the modules themselves call, so
  its output is bit-identical to the module path by construction;
* :class:`ModuleExecutor` is the legacy direct-module-call path;
* ``repro.nn.fuse`` registers a third executor (``"fused"``) that collapses
  op runs into single in-place kernels with planned buffer reuse.

Executors are pluggable via :func:`register_executor`; campaign code selects
one by name (spec knob ``execution.executor`` / CLI ``--executor``) and the
plan trace validates the chosen executor bit-exactly against the traced
model output before trusting it.

**Hook transparency.**  Fault-injection hooks must keep firing: an executor
may only bypass a module's ``__call__`` when the module has no pre-hooks and
every forward hook declares itself transparent for the current pass by
exposing ``hook.plan_transparent()`` returning ``True`` (disabled monitors
do this).  :func:`module_blocked` implements that check; blocked modules are
executed through the ordinary module call so hooks observe exactly what they
would in an unplanned forward.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F, layers
from repro.nn.module import Module

__all__ = [
    "IROp",
    "ALIAS_KINDS",
    "ELEMENTWISE_KINDS",
    "lower_segment",
    "module_blocked",
    "PlanExecutor",
    "ModuleExecutor",
    "InterpreterExecutor",
    "register_executor",
    "make_executor",
    "executor_names",
]


class IROp:
    """One primitive operation of a lowered segment.

    Attributes:
        kind: op identifier (``"conv2d"``, ``"bias_add"``, ``"relu"``, ...).
        module: the module the op was lowered from; kernels read its
            parameters/buffers *live* at execution time so in-place weight
            faults between trace and execution are observed.
        name: dotted module path of ``module`` inside the planned model.
    """

    __slots__ = ("kind", "module", "name")

    def __init__(self, kind: str, module: Module, name: str):
        self.kind = kind
        self.module = module
        self.name = name

    def run(self, value):
        """Execute this op (allocating) and return its output."""
        kernel = _KERNELS.get(self.kind)
        if kernel is None:
            return self.module.forward(value)
        return kernel(self.module, value)

    def __repr__(self) -> str:
        return f"IROp({self.kind!r}, {self.name!r})"


# Ops that map one array elementwise to an array of the same shape; maximal
# runs of these fuse into a single chain (see repro.nn.fuse).
ELEMENTWISE_KINDS = frozenset(
    {"bias_add", "relu", "leaky_relu", "sigmoid", "tanh", "batchnorm2d"}
)

# Ops that return their input (or a view of it) unchanged; they propagate
# buffer ownership instead of producing a fresh array.
ALIAS_KINDS = frozenset({"flatten", "identity", "dropout"})


def _bias_add(module: Module, x):
    bias = module.bias.data
    if x.ndim == 2:
        return x + bias
    return x + bias.reshape((1, -1) + (1,) * (x.ndim - 2))


# Split kernels: a Conv2d/Linear segment lowers to a weight op plus a
# separate bias_add so the bias participates in elementwise fusion.  The
# split is bit-identical to the module forward because the trailing
# float32->float32 astype in F.conv2d/F.linear preserves bits and the
# float32 add commutes with it.
_KERNELS = {
    "conv2d": lambda m, x: F.conv2d(x, m.weight.data, None, m.stride, m.padding, m.groups),
    "matmul": lambda m, x: F.linear(x, m.weight.data, None),
    "bias_add": _bias_add,
}


# Leaf module types whose forward is a single IR op.  Exact type match:
# subclasses may override forward and stay opaque.
_SINGLE_OP_TYPES = {
    layers.Conv3d: "conv3d",
    layers.BatchNorm2d: "batchnorm2d",
    layers.ReLU: "relu",
    layers.LeakyReLU: "leaky_relu",
    layers.Sigmoid: "sigmoid",
    layers.Tanh: "tanh",
    layers.Softmax: "softmax",
    layers.MaxPool2d: "max_pool2d",
    layers.AvgPool2d: "avg_pool2d",
    layers.AdaptiveAvgPool2d: "adaptive_avg_pool2d",
    layers.Upsample: "upsample",
    layers.Flatten: "flatten",
    layers.Dropout: "dropout",
    layers.Identity: "identity",
}


def lower_segment(module: Module, name: str):
    """Lower one plan segment to its op list, or ``None`` if it stays opaque.

    Only exact layer types are lowered — subclasses and containers that did
    not linearise (residual blocks, detection heads) return ``None`` and are
    executed as ordinary module calls by every executor.
    """
    module_type = type(module)
    if module_type is layers.Conv2d:
        ops = [IROp("conv2d", module, name)]
        if module.bias is not None:
            ops.append(IROp("bias_add", module, name))
        return ops
    if module_type is layers.Linear:
        ops = [IROp("matmul", module, name)]
        if module.bias is not None:
            ops.append(IROp("bias_add", module, name))
        return ops
    kind = _SINGLE_OP_TYPES.get(module_type)
    if kind is None:
        return None
    return [IROp(kind, module, name)]


def module_blocked(module: Module) -> bool:
    """True if hooks force this module through the ordinary call path.

    Any pre-hook blocks (it may rewrite the input).  A forward hook blocks
    unless it declares itself transparent for the current pass via a
    ``plan_transparent()`` attribute returning ``True`` — disabled inference
    monitors do this so an idle monitor does not forbid fused execution.
    """
    if module._forward_pre_hooks:
        return True
    for hook in module._forward_hooks.values():
        transparent = getattr(hook, "plan_transparent", None)
        if transparent is None or not transparent():
            return True
    return False


# --------------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------------- #
class PlanExecutor:
    """Executes the segments of one :class:`ForwardPlan`.

    Subclasses implement :meth:`run_segment`; :meth:`run_range` may be
    overridden to exploit cross-segment structure (the fused executor does).
    Executors must be bit-identical to the module call path whenever
    non-transparent hooks are present (see :func:`module_blocked`).
    """

    name = "abstract"

    def __init__(self, plan):
        self.plan = plan

    def run_segment(self, index: int, value):
        """Run segment ``index`` on boundary value ``a_index``; return ``a_{index+1}``."""
        raise NotImplementedError

    def run_range(self, start: int, stop: int, value):
        """Run segments ``[start, stop)`` and return the boundary value ``a_stop``."""
        for index in range(start, stop):
            value = self.run_segment(index, value)
        return value


class ModuleExecutor(PlanExecutor):
    """Legacy executor: one ordinary module call per segment."""

    name = "module"

    def run_segment(self, index: int, value):
        return self.plan.segments[index](value)


class InterpreterExecutor(PlanExecutor):
    """Op-by-op IR interpreter.

    Runs lowered ops through the same functional kernels the modules call,
    allocating one fresh output per op (O(sum) activation memory — the
    baseline the fused executor's buffer plan is measured against, see
    :attr:`alloc_bytes`).  Segments that did not lower, or whose module is
    hook-blocked, fall back to the module call.
    """

    name = "interpreter"

    def __init__(self, plan):
        super().__init__(plan)
        self.segment_ops = [
            lower_segment(module, name)
            for module, name in zip(plan.segments, plan.segment_names)
        ]
        # Cumulative bytes of op outputs allocated by the IR path (alias ops
        # excluded); tests compare this against the fused executor's planned
        # footprint.  Kernel-internal temporaries are identical across
        # executors and intentionally not counted.
        self.alloc_bytes = 0

    def reset_stats(self) -> None:
        """Zero the allocation accounting."""
        self.alloc_bytes = 0

    def run_segment(self, index: int, value):
        ops = self.segment_ops[index]
        module = self.plan.segments[index]
        if ops is None or module_blocked(module):
            return module(value)
        for op in ops:
            value = op.run(value)
            if op.kind not in ALIAS_KINDS and isinstance(value, np.ndarray):
                self.alloc_bytes += value.nbytes
        return value


# --------------------------------------------------------------------------- #
# executor registry
# --------------------------------------------------------------------------- #
_EXECUTORS: dict = {}


def register_executor(name: str, factory, override: bool = False) -> None:
    """Register an executor factory ``factory(plan) -> PlanExecutor``.

    Args:
        name: registry key (``"module"``, ``"interpreter"``, ``"fused"``, ...).
        factory: callable building an executor bound to one plan.
        override: allow replacing an existing registration.
    """
    if name in _EXECUTORS and not override:
        raise ValueError(f"executor {name!r} is already registered")
    _EXECUTORS[name] = factory


def _ensure_builtin_executors() -> None:
    # The fused executor lives in repro.nn.fuse which imports this module;
    # import it lazily so merely importing repro.nn.ir has no cycle.
    from repro.nn import fuse  # noqa: F401


def executor_names() -> list:
    """Sorted names of all registered executors."""
    _ensure_builtin_executors()
    return sorted(_EXECUTORS)


def make_executor(name: str, plan) -> PlanExecutor:
    """Instantiate the executor registered under ``name`` for ``plan``."""
    _ensure_builtin_executors()
    factory = _EXECUTORS.get(name)
    if factory is None:
        raise KeyError(f"unknown executor {name!r}; registered: {sorted(_EXECUTORS)}")
    return factory(plan)


register_executor("module", ModuleExecutor)
register_executor("interpreter", InterpreterExecutor)
