"""Deterministic weight initialisers.

Because no pre-trained weights are available offline, every model in the zoo
is initialised from a seeded random stream.  Determinism matters twice over:
the fault-free golden run and the fault-injected runs must execute the exact
same network, and experiments must be reproducible across processes.
"""

from __future__ import annotations

import numpy as np


def kaiming_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    rng: np.random.Generator,
    gain: float = np.sqrt(2.0),
) -> np.ndarray:
    """He/Kaiming uniform initialisation used for conv and linear weights."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_bias(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias initialisation: uniform in ``+/- 1/sqrt(fan_in)``."""
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero tensor."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one tensor."""
    return np.ones(shape, dtype=np.float32)


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a numpy random generator from an optional seed."""
    return np.random.default_rng(seed)
