"""Numpy-backed neural-network substrate.

This subpackage stands in for PyTorch's ``torch.nn``.  It reproduces the
subset of the PyTorch module contract that PyTorchFI / PyTorchALFI rely on:

* :class:`~repro.nn.module.Module` with registered parameters and buffers,
  ``named_modules`` traversal, ``state_dict`` / ``load_state_dict`` and --
  crucially for neuron fault injection -- **forward hooks** that receive the
  layer output tensor and may modify it in place.
* The layer types the paper supports for fault injection (``Conv2d``,
  ``Conv3d``, ``Linear``) plus the auxiliary layers needed to build real
  CNN classifiers and detectors (pooling, batch norm, activations, upsample).
* ``Sequential`` / ``ModuleList`` containers and seeded weight initialisers
  so every model in the zoo is deterministic.
"""

from repro.nn import functional, fuse, init, ir
from repro.nn.containers import ModuleList, Sequential
from repro.nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Conv3d,
    Dropout,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    Upsample,
)
from repro.nn.forward_plan import ActivationArena, ForwardPlan
from repro.nn.ir import executor_names, make_executor, register_executor
from repro.nn.module import Module, Parameter, RemovableHandle

__all__ = [
    "ActivationArena",
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "ForwardPlan",
    "BatchNorm2d",
    "Conv2d",
    "Conv3d",
    "Dropout",
    "Flatten",
    "Identity",
    "LeakyReLU",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "RemovableHandle",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "Upsample",
    "executor_names",
    "functional",
    "fuse",
    "init",
    "ir",
    "make_executor",
    "register_executor",
]
