"""Op fusion and planned buffer reuse for forward plans.

Builds on the segment IR of :mod:`repro.nn.ir`: the ops of a ``(start,
stop)`` segment range are concatenated and grouped into fused nodes —

* :class:`ConvActNode`: conv2d/linear with its bias folded back into the
  functional kernel, plus any trailing elementwise run applied in place on
  the fresh conv output;
* :class:`ChainNode`: a maximal run of elementwise ops executed as one pass
  over a single buffer (in-place where the op has an ``out=`` form, see
  ``_INPLACE_EMITS``);
* :class:`SingleOpNode` / :class:`CallModuleNode` for everything else.

**Buffer plan.**  Values flow through the node list with a tiny liveness
state: *external* (caller-owned — never written in place, so golden-cache
boundary activations can be resumed from safely), *owned* (fresh output of
this run, free to overwrite) and *in-slot* (living in a reusable arena
buffer).  An elementwise chain whose input is external writes into an
arena slot; every value a program returns is escaped out of the arena, so
slots never outlive a run.  The arena keeps one grow-only byte buffer per
slot, giving O(peak)-sized reuse instead of the interpreter's
O(sum-of-activations) allocation.

**Bit-exactness contract.**  Every fused kernel is either the same ufunc
the functional path calls (with ``out=`` supplied — results are identical
by definition) or an operator reordering proven bit-preserving
(``docs/ir.md``).  Ops with rewrites that are *not* bit-safe (the
branch-masked sigmoid, leaky-relu's NaN-payload hazard) stay on their
allocating functional kernels inside chains.  The trace-time validation in
``ForwardPlan.trace`` additionally replays the whole model and compares
byte-for-byte before the fused executor is trusted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn import functional as F
from repro.nn.ir import (
    ALIAS_KINDS,
    ELEMENTWISE_KINDS,
    PlanExecutor,
    lower_segment,
    module_blocked,
    register_executor,
)

__all__ = [
    "SlotArena",
    "ConvActNode",
    "ChainNode",
    "SingleOpNode",
    "CallModuleNode",
    "build_program",
    "FusedExecutor",
]


# ---------------------------------------------------------------------------
# in-place elementwise kernels
# ---------------------------------------------------------------------------
def _emit_relu(module, x, out):
    np.maximum(x, 0.0, out=out)


def _emit_tanh(module, x, out):
    np.tanh(x, out=out)


def _emit_bias_add(module, x, out):
    bias = module.bias.data
    if x.ndim == 2:
        np.add(x, bias, out=out)
    else:
        np.add(x, bias.reshape((1, -1) + (1,) * (x.ndim - 2)), out=out)


def _emit_batchnorm2d(module, x, out):
    # Same ufunc sequence as F.batch_norm2d, each step with out= supplied;
    # the trailing float32->float32 astype of the functional path is a
    # bit-preserving copy and is elided.
    mean = module._buffers["running_mean"].reshape(1, -1, 1, 1)
    var = module._buffers["running_var"].reshape(1, -1, 1, 1)
    np.subtract(x, mean, out=out)
    np.divide(out, np.sqrt(var + module.eps), out=out)
    np.multiply(out, module.weight.data.reshape(1, -1, 1, 1), out=out)
    np.add(out, module.bias.data.reshape(1, -1, 1, 1), out=out)


# Elementwise ops with a bit-identical out= form.  sigmoid (branch-masked
# fancy indexing) and leaky_relu (NaN-payload hazard in any in-place
# rewrite) intentionally stay on their allocating functional kernels.
_INPLACE_EMITS = {
    "relu": _emit_relu,
    "tanh": _emit_tanh,
    "bias_add": _emit_bias_add,
    "batchnorm2d": _emit_batchnorm2d,
}


class SlotArena:
    """Grow-only reusable buffers backing the planned chain outputs.

    One flat byte buffer per slot key, viewed and reshaped per use, so a
    slot serves activations of varying shapes/batch sizes without
    reallocating (buffers only grow to the peak byte size seen).
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def view(self, key, shape):
        """A float32 view of slot ``key`` shaped ``shape`` (allocating on growth)."""
        nbytes = 4 * math.prod(shape)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.nbytes < nbytes:
            buffer = np.empty(nbytes, dtype=np.uint8)
            self._buffers[key] = buffer
        return buffer[:nbytes].view(np.float32).reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def clear(self) -> None:
        """Drop all slot buffers."""
        self._buffers = {}


# ---------------------------------------------------------------------------
# fused nodes
# ---------------------------------------------------------------------------
class _FusedNode:
    """Base node: a group of ops whose member modules never split.

    ``execute`` receives and returns ``(value, owned, in_slot)`` — the
    liveness state of the current boundary value.  When any member module
    is hook-blocked the executor calls :meth:`fallback` instead, which
    replays the ordinary module calls (hooks fire, output is exact).
    """

    __slots__ = ("modules", "is_last", "slot_key")

    def __init__(self, modules):
        self.modules = modules
        self.is_last = False
        self.slot_key = None

    def blocked(self) -> bool:
        return any(module_blocked(module) for module in self.modules)

    def fallback(self, value):
        for module in self.modules:
            value = module(value)
        return value

    def execute(self, value, owned, in_slot, executor):
        raise NotImplementedError


def _dedup_modules(ops):
    modules = []
    for op in ops:
        if not modules or modules[-1] is not op.module:
            modules.append(op.module)
    return modules


class ConvActNode(_FusedNode):
    """conv2d/linear (+bias) with a trailing elementwise run fused in place."""

    __slots__ = ("conv_op", "with_bias", "act_ops")

    def __init__(self, conv_op, with_bias, act_ops):
        super().__init__(_dedup_modules([conv_op] + act_ops))
        self.conv_op = conv_op
        self.with_bias = with_bias
        self.act_ops = act_ops

    def execute(self, value, owned, in_slot, executor):
        """Run conv/linear with fused bias, then the trailing chain in place."""
        module = self.conv_op.module
        bias = module.bias.data if self.with_bias else None
        if self.conv_op.kind == "conv2d":
            value = F.conv2d(
                value, module.weight.data, bias, module.stride, module.padding, module.groups
            )
        else:
            value = F.linear(value, module.weight.data, bias)
        executor.alloc_bytes += value.nbytes
        value = _run_chain_on_owned(self.act_ops, value, executor)
        return value, True, False


def _run_chain_on_owned(ops, value, executor):
    """Apply elementwise ops to a buffer this run owns (in place where safe)."""
    for op in ops:
        emit = _INPLACE_EMITS.get(op.kind)
        if emit is not None and value.dtype == np.float32:
            emit(op.module, value, value)
        else:
            value = op.run(value)
            executor.alloc_bytes += value.nbytes
    return value


class ChainNode(_FusedNode):
    """A maximal elementwise run executed as one pass over one buffer."""

    __slots__ = ("ops",)

    def __init__(self, ops):
        super().__init__(_dedup_modules(ops))
        self.ops = ops

    def execute(self, value, owned, in_slot, executor):
        """Run the elementwise chain over one buffer per the liveness state."""
        for op in self.ops:
            emit = _INPLACE_EMITS.get(op.kind)
            if emit is None or not isinstance(value, np.ndarray) or value.dtype != np.float32:
                value = op.run(value)
                owned, in_slot = True, False
                executor.alloc_bytes += value.nbytes
                continue
            if owned and not (in_slot and self.is_last):
                # Overwrite a buffer we own; slot values a program would
                # return are moved to a fresh buffer instead (below).
                emit(op.module, value, value)
                continue
            if self.is_last:
                out = np.empty(value.shape, np.float32)
                executor.alloc_bytes += out.nbytes
                in_slot = False
            else:
                out = executor.arena.view(self.slot_key, value.shape)
                in_slot = True
            emit(op.module, value, out)
            value = out
            owned = True
        return value, owned, in_slot


class SingleOpNode(_FusedNode):
    """One non-elementwise op (pooling, softmax, view ops, conv3d)."""

    __slots__ = ("op",)

    def __init__(self, op):
        super().__init__([op.module])
        self.op = op

    def execute(self, value, owned, in_slot, executor):
        """Run the op; alias kinds propagate the input's liveness flags."""
        value = self.op.run(value)
        if self.op.kind in ALIAS_KINDS:
            # The output is (a view of) the input: propagate its liveness.
            return value, owned, in_slot
        if isinstance(value, np.ndarray):
            executor.alloc_bytes += value.nbytes
        return value, True, False


class CallModuleNode(_FusedNode):
    """Opaque segment: an ordinary module call (atomic residual blocks etc.)."""

    __slots__ = ()

    def blocked(self) -> bool:
        """Never blocked: the node is the module call, hooks fire either way."""
        # The node *is* a module call; hooks fire either way.
        return False

    def execute(self, value, owned, in_slot, executor):
        """Call the module; its output is externally owned (may be a view)."""
        return self.modules[0](value), False, False


def build_program(segment_items) -> list:
    """Group the ops of a segment range into fused nodes.

    Args:
        segment_items: iterable of ``(module, ops_or_none)`` pairs in chain
            order; ``None`` ops mark opaque segments.

    Returns:
        The node list.  Module boundaries never split across nodes, so a
        hook-blocked node can fall back to plain module calls bit-exactly.
    """
    ops: list = []
    nodes: list = []

    def flush_ops():
        i = 0
        while i < len(ops):
            op = ops[i]
            if op.kind in ("conv2d", "matmul"):
                j = i + 1
                with_bias = False
                if j < len(ops) and ops[j].kind == "bias_add" and ops[j].module is op.module:
                    with_bias = True
                    j += 1
                acts = []
                while j < len(ops) and ops[j].kind in ELEMENTWISE_KINDS:
                    acts.append(ops[j])
                    j += 1
                nodes.append(ConvActNode(op, with_bias, acts))
                i = j
            elif op.kind in ELEMENTWISE_KINDS:
                j = i
                while j < len(ops) and ops[j].kind in ELEMENTWISE_KINDS:
                    j += 1
                nodes.append(ChainNode(ops[i:j]))
                i = j
            else:
                nodes.append(SingleOpNode(op))
                i += 1
        ops.clear()

    for module, segment_ops in segment_items:
        if segment_ops is None:
            flush_ops()
            nodes.append(CallModuleNode([module]))
        else:
            ops.extend(segment_ops)
    flush_ops()

    for index, node in enumerate(nodes):
        node.slot_key = index
    if nodes:
        nodes[-1].is_last = True
    return nodes


class FusedExecutor(PlanExecutor):
    """Executes compiled fused programs with planned buffer reuse.

    Programs are compiled lazily per ``(start, stop)`` range and cached, so
    every ``resume(k, a_k)`` entry point of a campaign gets its own fused
    suffix program.  All programs share one :class:`SlotArena`; returned
    values are always escaped out of the arena, so reuse across programs
    and steps is safe.
    """

    name = "fused"

    def __init__(self, plan):
        super().__init__(plan)
        self.segment_ops = [
            lower_segment(module, name)
            for module, name in zip(plan.segments, plan.segment_names)
        ]
        self._programs: dict = {}
        self.arena = SlotArena()
        # Fresh activation bytes allocated (slot writes excluded); the
        # planned footprint is alloc_bytes + arena.nbytes.
        self.alloc_bytes = 0

    def reset_stats(self) -> None:
        """Zero the allocation accounting (the arena keeps its buffers)."""
        self.alloc_bytes = 0

    def program(self, start: int, stop: int) -> list:
        """The (cached) fused node program for segments ``[start, stop)``."""
        key = (start, stop)
        nodes = self._programs.get(key)
        if nodes is None:
            items = [
                (self.plan.segments[index], self.segment_ops[index])
                for index in range(start, stop)
            ]
            nodes = build_program(items)
            self._programs[key] = nodes
        return nodes

    def _execute(self, nodes, value):
        owned = False
        in_slot = False
        for node in nodes:
            if node.blocked():
                value = node.fallback(value)
                owned, in_slot = False, False
            else:
                value, owned, in_slot = node.execute(value, owned, in_slot, self)
        if in_slot and isinstance(value, np.ndarray):
            # Never leak arena memory to the caller: the next run would
            # overwrite it (golden-cache boundaries must stay stable).
            value = value.copy()
            self.alloc_bytes += value.nbytes
        return value

    def run_segment(self, index: int, value):
        return self._execute(self.program(index, index + 1), value)

    def run_range(self, start: int, stop: int, value):
        return self._execute(self.program(start, stop), value)


register_executor("fused", FusedExecutor)
