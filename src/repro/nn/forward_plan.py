"""Forward plans: flatten a module tree into a resumable segment chain.

Fault-injection campaigns run the same input through a fault-free ("golden")
and a faulty model whose weights differ only from the *first faulted layer*
onwards.  Every activation upstream of that layer is bit-identical between
the two lanes, so recomputing it for the faulty lane is pure waste.  A
:class:`ForwardPlan` makes the prefix reusable:

* the module tree is flattened into an ordered list of *segments* whose
  outputs chain linearly (``a_{i+1} = segment_i(a_i)``).  Sub-trees whose
  children do not form such a chain (e.g. residual blocks) are kept as one
  atomic segment, so the plan is exact for any architecture — in the worst
  case it degenerates to a single segment and prefix reuse is simply a no-op;
* :meth:`run_recording` executes a full pass while checkpointing selected
  boundary activations (into a reusable :class:`ActivationArena` or as owned
  copies for a cache) and, optionally, snapshotting monitor event counts at
  every boundary so NaN/Inf events can later be attributed to the prefix;
* :meth:`resume` re-enters the pass at segment ``k`` from a cached boundary
  activation and only executes the suffix.

The flattening is *trace-based*: one instrumented forward pass records every
module call with the identities of its first input and its output, and a
sub-tree is linearised only if its children were each called exactly once,
with exactly one positional input, and chained by object identity from the
parent's input to the parent's output.  The resulting plan is validated by
replaying the traced input segment-by-segment and comparing the output
bit-exactly against the traced full-model output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.ir import make_executor
from repro.nn.module import Module


@dataclass
class _TraceCall:
    """One module invocation recorded during the instrumented forward pass."""

    module: Module
    num_inputs: int
    in_id: int | None
    out_id: int | None = None
    children: list["_TraceCall"] = field(default_factory=list)


class ActivationArena:
    """Reusable per-boundary activation buffers for recording forward passes.

    Recording the same plan step after step would otherwise allocate a fresh
    checkpoint array per boundary per step; the arena keeps one buffer per
    boundary index and copies into it when shape and dtype match.
    """

    def __init__(self) -> None:
        self._buffers: dict[int, np.ndarray] = {}

    def store(self, index: int, value):
        """Store a snapshot of ``value`` for boundary ``index`` and return it."""
        if not isinstance(value, np.ndarray):
            # Non-array boundaries (e.g. detection structures) are kept by
            # reference; plans over such models are atomic in practice.
            return value
        buffer = self._buffers.get(index)
        if buffer is None or buffer.shape != value.shape or buffer.dtype != value.dtype:
            buffer = np.empty_like(value)
            self._buffers[index] = buffer
        np.copyto(buffer, value)
        return buffer

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def clear(self) -> None:
        """Drop all buffers."""
        self._buffers = {}


def _snapshot(value):
    """Owned copy of a boundary value (for cache entries that outlive a step)."""
    if isinstance(value, np.ndarray):
        return np.array(value, copy=True)
    return value


def _bitwise_equal(a, b) -> bool:
    """Bit-exact structural comparison (NaN payloads like any other pattern).

    Arrays compare by bytes, lists/tuples recurse (covering detection-style
    list-of-objects outputs via their box/score/label arrays).  Anything the
    function cannot compare counts as *unequal*, so an unvalidatable output
    type invalidates the plan instead of silently trusting it.
    """
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_bitwise_equal(x, y) for x, y in zip(a, b))
    if hasattr(a, "boxes") and hasattr(b, "boxes"):
        return all(
            _bitwise_equal(
                np.asarray(getattr(a, field)), np.asarray(getattr(b, field))
            )
            for field in ("boxes", "scores", "labels")
        )
    if isinstance(a, (int, float, np.generic)) and isinstance(b, (int, float, np.generic)):
        return np.asarray(a).tobytes() == np.asarray(b).tobytes()
    return False


class ForwardPlan:
    """An ordered, resumable segmentation of one model's forward pass.

    Build with :meth:`trace`.  A plan with :attr:`valid` ``False`` (no linear
    chain found, or the replay validation failed) must not be used for
    prefix reuse; callers fall back to plain full forward passes.
    """

    def __init__(
        self,
        model: Module,
        segments: list[Module],
        segment_names: list[str],
        valid: bool,
        executor: str = "module",
    ):
        self.model = model
        self.segments = segments
        self.segment_names = segment_names
        self.valid = valid
        self._by_name = {name: index for index, name in enumerate(segment_names)}
        # Pluggable execution backend (see repro.nn.ir).  The constructor
        # trusts the name; trace() validates non-default executors bitwise
        # against the traced output before handing out the plan.
        self.executor_name = executor
        self._executor = make_executor(executor, self)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def trace(
        cls, model: Module, example_input: np.ndarray, executor: str = "module"
    ) -> "ForwardPlan":
        """Trace one forward pass of ``model`` and build its plan.

        The instrumented pass runs with whatever hooks are currently
        registered (inactive injection hooks are no-ops), so it must be
        called outside any active fault group.

        Args:
            model: the model to plan.
            example_input: one representative input batch.
            executor: execution backend name (see
                :func:`repro.nn.ir.register_executor`).  A non-default
                executor is validated by replaying the traced input and
                comparing the output bit-exactly; on any mismatch or error
                the plan silently falls back to the ``"module"`` executor,
                so a requested executor never changes results.
        """
        root_call, output = cls._record_trace(model, example_input)
        calls = cls._linearize(root_call)
        names = {id(module): name for name, module in model.named_modules()}
        segments = [call.module for call in calls]
        segment_names = [names.get(id(module), "") for module in segments]
        valid = len(segments) > 1
        if valid:
            plan = cls(model, segments, segment_names, valid=True)
            try:
                replayed = plan.resume(0, example_input)
            except Exception:
                valid = False
            else:
                valid = _bitwise_equal(replayed, output)
        if not valid:
            # Degenerate single-segment plan: resume(0) is a full forward.
            return cls(model, [model], [names.get(id(model), "")], valid=False)
        if executor != "module":
            try:
                candidate = cls(model, segments, segment_names, valid=True, executor=executor)
                if _bitwise_equal(candidate.resume(0, example_input), output):
                    return candidate
            except Exception:
                pass
        return cls(model, segments, segment_names, valid=True)

    @staticmethod
    def _record_trace(model: Module, example_input) -> tuple[_TraceCall, object]:
        stack: list[_TraceCall] = []
        root: list[_TraceCall] = []
        # Pin every traced array for the duration of the trace so that id()
        # values cannot be recycled by the allocator mid-pass.
        pinned: list[object] = []

        def pre_hook(module, inputs):
            call = _TraceCall(
                module=module,
                num_inputs=len(inputs),
                in_id=id(inputs[0]) if inputs else None,
            )
            pinned.extend(inputs)
            if stack:
                stack[-1].children.append(call)
            else:
                root.append(call)
            stack.append(call)
            return None

        def post_hook(module, inputs, output):
            call = stack.pop()
            call.out_id = id(output)
            pinned.append(output)
            return None

        handles = []
        seen: set[int] = set()
        for module in model.modules():
            if id(module) in seen:
                continue
            seen.add(id(module))
            handles.append(module.register_forward_pre_hook(pre_hook))
            handles.append(module.register_forward_hook(post_hook))
        try:
            output = model(example_input)
        finally:
            for handle in handles:
                handle.remove()
        if len(root) != 1 or stack:
            raise RuntimeError("forward trace did not produce a single root call")
        return root[0], output

    @classmethod
    def _linearize(cls, call: _TraceCall) -> list[_TraceCall]:
        """Flatten a traced call into chain elements (atomic if not linear)."""
        children = call.children
        if not children:
            return [call]
        module_ids = [id(child.module) for child in children]
        chained = (
            len(set(module_ids)) == len(module_ids)
            and all(child.num_inputs == 1 for child in children)
            and children[0].in_id == call.in_id
            and children[-1].out_id == call.out_id
            and all(nxt.in_id == prev.out_id for prev, nxt in zip(children, children[1:]))
        )
        if not chained:
            return [call]
        flattened: list[_TraceCall] = []
        for child in children:
            flattened.extend(cls._linearize(child))
        return flattened

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_segments(self) -> int:
        """Number of chain segments (1 for a degenerate plan)."""
        return len(self.segments)

    def segment_for(self, module_name: str) -> int | None:
        """Index of the segment that is, or contains, module ``module_name``.

        Resuming a faulty pass at this index guarantees the faulted module is
        (re-)executed: for a module buried inside an atomic segment the whole
        segment is re-run.
        """
        name = module_name
        while True:
            index = self._by_name.get(name)
            if index is not None:
                return index
            if not name:
                return None
            name = name.rsplit(".", 1)[0] if "." in name else ""

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def resume(self, start: int, activation):
        """Execute the segments ``[start, ...)`` from a boundary activation.

        ``activation`` must be the (golden) boundary value ``a_start`` — the
        input of segment ``start``.  ``resume(0, x)`` is a full pass.
        """
        if not 0 <= start <= len(self.segments):
            raise IndexError(f"resume index {start} outside plan of {len(self.segments)} segments")
        return self._executor.run_range(start, len(self.segments), activation)

    def run_prefix(self, x, stop: int):
        """Execute segments ``[0, stop)`` and return the boundary value ``a_stop``."""
        if not 0 <= stop <= len(self.segments):
            raise IndexError(f"prefix stop {stop} outside plan of {len(self.segments)} segments")
        return self._executor.run_range(0, stop, x)

    def run_recording(
        self,
        x,
        boundaries="all",
        arena: ActivationArena | None = None,
        monitor=None,
    ):
        """Run a full pass while checkpointing boundary activations.

        Args:
            x: the model input (boundary 0; never recorded).
            boundaries: ``"all"`` or an iterable of boundary indices in
                ``[1, num_segments)`` to checkpoint.
            arena: reuse buffers of this arena for the checkpoints; without
                an arena each checkpoint is an owned copy (safe to cache
                beyond the current step).
            monitor: optional :class:`~repro.alficore.monitoring.InferenceMonitor`
                whose event counts are snapshotted before every segment, so a
                later suffix-only pass can inherit the prefix events.  The
                caller owns reset/enable/collect of the monitor.

        Returns:
            Tuple ``(output, checkpoints, marks)`` where ``checkpoints`` maps
            boundary index to activation and ``marks`` (or ``None`` without a
            monitor) is a list of ``num_segments + 1`` event-count tuples:
            ``marks[k]`` are the counts accumulated before segment ``k`` ran.
        """
        wanted = None if boundaries == "all" else set(boundaries)
        checkpoints: dict[int, object] = {}
        marks: list[tuple[int, int, int]] | None = [] if monitor is not None else None
        value = x
        for index in range(len(self.segments)):
            if index > 0 and (wanted is None or index in wanted):
                checkpoints[index] = (
                    arena.store(index, value) if arena is not None else _snapshot(value)
                )
            if marks is not None:
                marks.append(monitor.event_counts())
            value = self._executor.run_segment(index, value)
        if marks is not None:
            marks.append(monitor.event_counts())
        return value, checkpoints, marks
