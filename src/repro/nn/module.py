"""Module base class with PyTorch-compatible forward hooks.

PyTorchALFI injects neuron faults by attaching *forward hooks* to selected
layers: the hook receives ``(module, input, output)`` after the layer's MAC
operation and may modify the output tensor in place.  Weight faults are
applied directly to the registered parameters.  This module reproduces that
contract, together with the traversal APIs (``named_modules``,
``named_parameters``) the injector uses to enumerate fault locations.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

# Type of a forward hook: hook(module, inputs, output) -> optional new output.
ForwardHook = Callable[["Module", tuple, np.ndarray], np.ndarray | None]
# Type of a forward pre-hook: hook(module, inputs) -> optional new inputs.
ForwardPreHook = Callable[["Module", tuple], tuple | None]


class Parameter:
    """A learnable tensor registered on a module.

    Thin wrapper around a numpy array so that parameters can be told apart
    from plain buffers and can be replaced / corrupted in place by the fault
    injector.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float32)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype of the underlying array."""
        return self.data.dtype

    def copy_(self, values: np.ndarray) -> None:
        """Copy ``values`` into the parameter storage (shape must match)."""
        values = np.asarray(values, dtype=self.data.dtype)
        if values.shape != self.data.shape:
            raise ValueError(
                f"cannot copy values of shape {values.shape} into parameter "
                f"of shape {self.data.shape}"
            )
        self.data[...] = values

    def __array__(self, dtype=None) -> np.ndarray:
        return self.data if dtype is None else self.data.astype(dtype)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape}, dtype={self.data.dtype})"


class RemovableHandle:
    """Handle returned by hook registration; calling :meth:`remove` detaches it."""

    _next_id = 0

    def __init__(self, hooks_dict: OrderedDict):
        self._hooks_dict = hooks_dict
        self.id = RemovableHandle._next_id
        RemovableHandle._next_id += 1

    def remove(self) -> None:
        """Remove the associated hook.  Safe to call more than once."""
        self._hooks_dict.pop(self.id, None)


class Module:
    """Base class for all neural-network modules.

    Mirrors the subset of ``torch.nn.Module`` needed by the fault injection
    framework: sub-module / parameter / buffer registration via attribute
    assignment, recursive traversal, forward hooks and state dict handling.
    """

    def __init__(self):
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._buffers: OrderedDict[str, np.ndarray] = OrderedDict()
        self._forward_hooks: OrderedDict[int, ForwardHook] = OrderedDict()
        self._forward_pre_hooks: OrderedDict[int, ForwardPreHook] = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute-based registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
            self.__dict__.pop(name, None)
        else:
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        # Only called when normal attribute lookup fails.
        for store in ("_parameters", "_modules", "_buffers"):
            container = self.__dict__.get(store)
            if container is not None and name in container:
                return container[name]
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable tensor (e.g. batch-norm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Register a learnable parameter under ``name``."""
        self._parameters[name] = param

    # ------------------------------------------------------------------ #
    # forward execution and hooks
    # ------------------------------------------------------------------ #
    def forward(self, *inputs):  # pragma: no cover - abstract
        """Compute the module output.  Subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *inputs):
        for hook in list(self._forward_pre_hooks.values()):
            result = hook(self, inputs)
            if result is not None:
                inputs = result if isinstance(result, tuple) else (result,)
        output = self.forward(*inputs)
        for hook in list(self._forward_hooks.values()):
            result = hook(self, inputs, output)
            if result is not None:
                output = result
        return output

    def register_forward_hook(self, hook: ForwardHook) -> RemovableHandle:
        """Register a callback run after :meth:`forward`.

        The hook signature is ``hook(module, inputs, output)``; returning a
        non-``None`` value replaces the output.  The output array may also be
        modified in place, which is how neuron fault injection works.
        """
        handle = RemovableHandle(self._forward_hooks)
        self._forward_hooks[handle.id] = hook
        return handle

    def register_forward_pre_hook(self, hook: ForwardPreHook) -> RemovableHandle:
        """Register a callback run before :meth:`forward` on the inputs."""
        handle = RemovableHandle(self._forward_pre_hooks)
        self._forward_pre_hooks[handle.id] = hook
        return handle

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def children(self) -> Iterator["Module"]:
        """Iterate over immediate child modules."""
        yield from self._modules.values()

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """Iterate over immediate ``(name, module)`` child pairs."""
        yield from self._modules.items()

    def modules(self) -> Iterator["Module"]:
        """Iterate over all modules in the tree, including ``self``."""
        for _, module in self.named_modules():
            yield module

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Iterate over all ``(qualified_name, module)`` pairs, including ``self``."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Iterate over all ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        """Iterate over all parameters recursively."""
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Iterate over all ``(qualified_name, buffer)`` pairs recursively."""
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def get_submodule(self, target: str) -> "Module":
        """Return the sub-module at dotted path ``target`` (empty = self)."""
        if not target:
            return self
        module: Module = self
        for part in target.split("."):
            if part not in module._modules:
                raise KeyError(f"no submodule named {target!r}")
            module = module._modules[part]
        return module

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # train / eval and serialization
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set the module tree to training (``True``) or inference mode."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set the module tree to inference mode."""
        return self.train(False)

    def to(self, device: str = "cpu") -> "Module":
        """Device placement no-op kept for API compatibility with PyTorch."""
        return self

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a flat mapping of all parameters and buffers (copies)."""
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Load parameters and buffers from a mapping produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        buffers = {name: (owner, key) for owner, name, key in self._owned_buffers()}
        missing = []
        for name, value in state.items():
            if name in params:
                params[name].copy_(value)
            elif name in buffers:
                owner, key = buffers[name]
                owner._buffers[key] = np.asarray(value, dtype=np.float32).copy()
            else:
                missing.append(name)
        if missing:
            raise KeyError(f"state dict entries with no matching parameter/buffer: {missing}")

    def _owned_buffers(self) -> Iterator[tuple["Module", str, str]]:
        """Yield ``(owner_module, qualified_name, local_name)`` for all buffers."""
        for prefix, module in self.named_modules():
            for key in module._buffers:
                qualified = f"{prefix}.{key}" if prefix else key
                yield module, qualified, key

    def clone(self) -> "Module":
        """Return a deep copy of the module (weights included, hooks dropped).

        Hooks are detached *before* the deep copy: a registered hook closure
        may capture arbitrarily large objects (an injector, a monitor, even
        another model), and deep-copying those along with the weights would be
        both wasteful and surprising.  The original module keeps its hooks.
        """
        stashed: list[tuple[Module, OrderedDict, OrderedDict]] = []
        for module in self.modules():
            stashed.append((module, module._forward_hooks, module._forward_pre_hooks))
            module._forward_hooks = OrderedDict()
            module._forward_pre_hooks = OrderedDict()
        try:
            cloned = copy.deepcopy(self)
        finally:
            for module, hooks, pre_hooks in stashed:
                module._forward_hooks = hooks
                module._forward_pre_hooks = pre_hooks
        return cloned

    def extra_repr(self) -> str:
        """Extra information appended to the module's repr line."""
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"
