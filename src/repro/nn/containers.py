"""Module containers: ``Sequential`` and ``ModuleList``."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module


class Sequential(Module):
    """Run child modules in registration order, feeding each the previous output."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            if not isinstance(module, Module):
                raise TypeError(f"Sequential expects Module instances, got {type(module)!r}")
            self._modules[str(index)] = module

    def append(self, module: Module) -> "Sequential":
        """Append a module to the end of the chain."""
        if not isinstance(module, Module):
            raise TypeError(f"Sequential expects Module instances, got {type(module)!r}")
        self._modules[str(len(self._modules))] = module
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        keys = list(self._modules)
        return self._modules[keys[index]]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """A list of modules that registers its entries as sub-modules.

    Unlike :class:`Sequential` it defines no forward pass; the owning module
    decides how to combine the children (e.g. detection heads over multiple
    feature maps).
    """

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Append a module to the list."""
        if not isinstance(module, Module):
            raise TypeError(f"ModuleList expects Module instances, got {type(module)!r}")
        self._modules[str(len(self._modules))] = module
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        keys = list(self._modules)
        return self._modules[keys[index]]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())
