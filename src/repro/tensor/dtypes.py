"""Numeric-type registry used by the fault models.

The paper stresses that the numeric type determines which bit positions are
vulnerable (exponent bits of floating point values have the highest impact).
This module centralises everything the injector needs to know about a dtype:
its bit width, which unsigned integer type mirrors its bit pattern, and where
the sign / exponent / mantissa fields live.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DTypeInfo:
    """Static description of a supported numeric type.

    Attributes:
        name: canonical name used in scenario files (e.g. ``"float32"``).
        np_dtype: the numpy dtype of stored values.
        int_view: unsigned integer dtype with the same width, used to view
            the raw bit pattern.
        bits: total number of bits.
        exponent_bits: number of exponent bits (0 for integer types).
        mantissa_bits: number of mantissa bits (0 for integer types).
        is_float: whether the type is an IEEE-754 floating point type.
    """

    name: str
    np_dtype: np.dtype
    int_view: np.dtype
    bits: int
    exponent_bits: int
    mantissa_bits: int
    is_float: bool

    @property
    def sign_bit_position(self) -> int:
        """Index of the sign bit (most significant bit)."""
        return self.bits - 1

    @property
    def exponent_range(self) -> tuple[int, int]:
        """Inclusive ``(low, high)`` bit positions of the exponent field."""
        if not self.is_float:
            raise ValueError(f"dtype {self.name} has no exponent field")
        low = self.mantissa_bits
        high = self.mantissa_bits + self.exponent_bits - 1
        return (low, high)

    @property
    def mantissa_range(self) -> tuple[int, int]:
        """Inclusive ``(low, high)`` bit positions of the mantissa field."""
        if not self.is_float:
            raise ValueError(f"dtype {self.name} has no mantissa field")
        return (0, self.mantissa_bits - 1)


SUPPORTED_DTYPES: dict[str, DTypeInfo] = {
    "float32": DTypeInfo(
        name="float32",
        np_dtype=np.dtype(np.float32),
        int_view=np.dtype(np.uint32),
        bits=32,
        exponent_bits=8,
        mantissa_bits=23,
        is_float=True,
    ),
    "float16": DTypeInfo(
        name="float16",
        np_dtype=np.dtype(np.float16),
        int_view=np.dtype(np.uint16),
        bits=16,
        exponent_bits=5,
        mantissa_bits=10,
        is_float=True,
    ),
    "float64": DTypeInfo(
        name="float64",
        np_dtype=np.dtype(np.float64),
        int_view=np.dtype(np.uint64),
        bits=64,
        exponent_bits=11,
        mantissa_bits=52,
        is_float=True,
    ),
    "int8": DTypeInfo(
        name="int8",
        np_dtype=np.dtype(np.int8),
        int_view=np.dtype(np.uint8),
        bits=8,
        exponent_bits=0,
        mantissa_bits=0,
        is_float=False,
    ),
    "int16": DTypeInfo(
        name="int16",
        np_dtype=np.dtype(np.int16),
        int_view=np.dtype(np.uint16),
        bits=16,
        exponent_bits=0,
        mantissa_bits=0,
        is_float=False,
    ),
    "int32": DTypeInfo(
        name="int32",
        np_dtype=np.dtype(np.int32),
        int_view=np.dtype(np.uint32),
        bits=32,
        exponent_bits=0,
        mantissa_bits=0,
        is_float=False,
    ),
}


def dtype_info(dtype: str | np.dtype | type) -> DTypeInfo:
    """Look up the :class:`DTypeInfo` for a dtype given by name or numpy dtype.

    Args:
        dtype: a name like ``"float32"``, a numpy dtype object, or a numpy
            scalar type such as ``np.float32``.

    Returns:
        The matching :class:`DTypeInfo`.

    Raises:
        KeyError: if the dtype is not supported by the fault models.
    """
    if isinstance(dtype, str):
        key = dtype
    else:
        key = np.dtype(dtype).name
    if key not in SUPPORTED_DTYPES:
        supported = ", ".join(sorted(SUPPORTED_DTYPES))
        raise KeyError(f"unsupported dtype {key!r}; supported: {supported}")
    return SUPPORTED_DTYPES[key]


def sign_bit(dtype: str | np.dtype | type) -> int:
    """Return the bit position of the sign bit for ``dtype``."""
    return dtype_info(dtype).sign_bit_position


def exponent_bit_range(dtype: str | np.dtype | type) -> tuple[int, int]:
    """Return the inclusive bit range of the exponent field for ``dtype``."""
    return dtype_info(dtype).exponent_range


def mantissa_bit_range(dtype: str | np.dtype | type) -> tuple[int, int]:
    """Return the inclusive bit range of the mantissa field for ``dtype``."""
    return dtype_info(dtype).mantissa_range
