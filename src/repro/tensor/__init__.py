"""Tensor-level utilities: dtype registry and IEEE-754 bit manipulation.

PyTorchALFI models hardware faults as bit flips in the binary representation
of weights or neuron activations.  This subpackage provides the exact
float32 / float16 / integer bit-level operations that the fault injector uses,
implemented with numpy views so the corrupted values are bit-identical to
what a real flipped register would produce.
"""

from repro.tensor.bitops import (
    BitFlipRecord,
    bits_to_float,
    bit_width,
    flip_bit,
    flip_bit_scalar,
    float_to_bits,
    format_bits,
    get_bit,
    set_bit,
)
from repro.tensor.dtypes import (
    DTypeInfo,
    SUPPORTED_DTYPES,
    dtype_info,
    exponent_bit_range,
    mantissa_bit_range,
    sign_bit,
)

__all__ = [
    "BitFlipRecord",
    "DTypeInfo",
    "SUPPORTED_DTYPES",
    "bit_width",
    "bits_to_float",
    "dtype_info",
    "exponent_bit_range",
    "flip_bit",
    "flip_bit_scalar",
    "float_to_bits",
    "format_bits",
    "get_bit",
    "mantissa_bit_range",
    "set_bit",
    "sign_bit",
]
