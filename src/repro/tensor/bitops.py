"""IEEE-754 bit-flip primitives.

These functions implement the core fault model of the paper: a hardware
transient fault is simulated by flipping a single bit of the binary
representation of a weight or an activation.  All operations are performed on
numpy integer views of the floating point storage, so the resulting values
are bit-exact with what a flipped hardware register would contain (including
NaN / Inf outcomes for exponent-field flips).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.dtypes import DTypeInfo, dtype_info


@dataclass(frozen=True)
class BitFlipRecord:
    """Bookkeeping record of a single applied bit flip.

    PyTorchALFI stores, for every injected fault, the original value, the
    corrupted value, the flipped bit position and the flip direction
    (``0->1`` or ``1->0``).  This record is what ends up in the second binary
    output file of a fault injection run.
    """

    bit_position: int
    original_value: float
    corrupted_value: float
    flip_direction: str

    def as_dict(self) -> dict:
        """Return a JSON/CSV-friendly dictionary of the record."""
        return {
            "bit_position": self.bit_position,
            "original_value": self.original_value,
            "corrupted_value": self.corrupted_value,
            "flip_direction": self.flip_direction,
        }


def bit_width(dtype: str | np.dtype | type) -> int:
    """Return the number of bits of ``dtype`` (e.g. 32 for float32)."""
    return dtype_info(dtype).bits


def float_to_bits(values: np.ndarray | float, dtype: str = "float32") -> np.ndarray:
    """Return the raw bit pattern of ``values`` as unsigned integers.

    Args:
        values: scalar or array of numeric values.
        dtype: the storage dtype whose binary representation is requested.

    Returns:
        An unsigned-integer array of the same shape holding the bit patterns.
    """
    info = dtype_info(dtype)
    arr = np.asarray(values, dtype=info.np_dtype)
    return arr.view(info.int_view)


def bits_to_float(bits: np.ndarray | int, dtype: str = "float32") -> np.ndarray:
    """Inverse of :func:`float_to_bits`: reinterpret bit patterns as values."""
    info = dtype_info(dtype)
    arr = np.asarray(bits, dtype=info.int_view)
    return arr.view(info.np_dtype)


def get_bit(values: np.ndarray | float, bit_position: int, dtype: str = "float32") -> np.ndarray:
    """Return the bit at ``bit_position`` (0 = LSB) of each value as 0/1."""
    info = _check_position(bit_position, dtype)
    bits = float_to_bits(values, dtype)
    mask = info.int_view.type(1) << info.int_view.type(bit_position)
    return ((bits & mask) != 0).astype(np.uint8)


def set_bit(
    values: np.ndarray | float,
    bit_position: int,
    bit_value: int,
    dtype: str = "float32",
) -> np.ndarray:
    """Return a copy of ``values`` with ``bit_position`` forced to ``bit_value``.

    This implements the *stuck-at* fault model (stuck-at-0 / stuck-at-1).
    """
    if bit_value not in (0, 1):
        raise ValueError(f"bit_value must be 0 or 1, got {bit_value}")
    info = _check_position(bit_position, dtype)
    bits = float_to_bits(values, dtype).copy()
    mask = info.int_view.type(1) << info.int_view.type(bit_position)
    if bit_value == 1:
        bits |= mask
    else:
        bits &= ~mask
    return bits_to_float(bits, dtype)


def flip_bit(
    values: np.ndarray | float,
    bit_position: int,
    dtype: str = "float32",
) -> np.ndarray:
    """Return a copy of ``values`` with ``bit_position`` flipped in every element.

    This implements the *transient single bit flip* fault model.
    """
    info = _check_position(bit_position, dtype)
    bits = float_to_bits(values, dtype).copy()
    mask = info.int_view.type(1) << info.int_view.type(bit_position)
    bits ^= mask
    return bits_to_float(bits, dtype)


def flip_bit_scalar(
    value: float,
    bit_position: int,
    dtype: str = "float32",
) -> BitFlipRecord:
    """Flip one bit of a single value and return the full bookkeeping record.

    Args:
        value: the original value.
        bit_position: 0-based bit index counted from the LSB.
        dtype: storage dtype of the value.

    Returns:
        A :class:`BitFlipRecord` with original value, corrupted value and the
        flip direction (``"0->1"`` or ``"1->0"``).
    """
    original_bit = int(get_bit(value, bit_position, dtype))
    corrupted = flip_bit(value, bit_position, dtype)
    corrupted_value = float(np.asarray(corrupted).reshape(()))
    direction = "0->1" if original_bit == 0 else "1->0"
    return BitFlipRecord(
        bit_position=bit_position,
        original_value=float(value),
        corrupted_value=corrupted_value,
        flip_direction=direction,
    )


def format_bits(value: float, dtype: str = "float32") -> str:
    """Return the bit pattern of ``value`` as a human-readable binary string.

    The string is grouped as ``sign|exponent|mantissa`` for floating point
    types, which makes log files and debug output easy to interpret.
    """
    info = dtype_info(dtype)
    bits = int(float_to_bits(value, dtype).reshape(()))
    raw = format(bits, f"0{info.bits}b")
    if not info.is_float:
        return raw
    sign = raw[0]
    exponent = raw[1 : 1 + info.exponent_bits]
    mantissa = raw[1 + info.exponent_bits :]
    return f"{sign}|{exponent}|{mantissa}"


def _check_position(bit_position: int, dtype: str | np.dtype | type) -> DTypeInfo:
    """Validate a bit position against the dtype width and return its info."""
    info = dtype_info(dtype)
    if not 0 <= bit_position < info.bits:
        raise ValueError(
            f"bit position {bit_position} out of range for {info.name} "
            f"(valid: 0..{info.bits - 1})"
        )
    return info
